"""Network + NFS I/O path: the "process preemption and I/O" noise sources.

HPC compute nodes in the paper's testbed have no disks: *all* I/O goes to an
NFS server through the network, via the ``rpciod`` kernel daemon.  The chain
modeled here follows the paper's Section IV-D exactly:

* a **read** is synchronous: the rank blocks in the syscall; when the server
  responds, a network interrupt lands on some CPU, ``net_rx_action`` runs
  there (slow and variable — the receive path must copy data before anyone
  may touch it, Table III), then ``rpciod`` wakes — *preempting whatever rank
  runs on that CPU* — completes the RPC and wakes the blocked rank;
* a **write** is asynchronous: the syscall hands the buffer to the DMA
  engine, ``net_tx_action`` runs immediately on the issuing CPU (fast and
  near-constant, Table IV), and the rank continues; a completion interrupt
  arrives later;
* depending on load the NIC coalesces interrupts (NAPI): some receive
  processing happens without a fresh interrupt, and some interrupts carry
  only acknowledgements — which is why Table II's interrupt frequency is not
  simply the sum of Tables III and IV.
"""

from __future__ import annotations

from typing import Callable, List, TYPE_CHECKING

from repro.simkernel.cpu import CPU
from repro.simkernel.softirq import SoftirqHandler, Vec
from repro.simkernel.task import Task
from repro.tracing.events import Ev

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.node import ComputeNode

#: Syscall numbers used in trace records (arg of Ev.SYSCALL frames).
NR_READ = 0
NR_WRITE = 1


class NetworkStack:
    def __init__(self, node: "ComputeNode") -> None:
        self.node = node
        #: Per-CPU completions waiting for net_rx_action to process them.
        self._rx_ready: List[List[Callable[[CPU], None]]] = [
            [] for _ in range(node.config.ncpus)
        ]
        self._next_irq_cpu = 0
        self.reads = 0
        self.writes = 0
        self.rx_irqs = 0
        self.ack_irqs = 0
        self.napi_polls = 0

    def start(self) -> None:
        node = self.node
        models = node.config.models
        node.softirq.register(
            Vec.NET_RX,
            SoftirqHandler(
                event=Ev.TASKLET_NET_RX,
                duration=lambda: models.net_rx.sample(node.rng_for("net")),
                post=self._rx_post,
            ),
        )
        node.softirq.register(
            Vec.NET_TX,
            SoftirqHandler(
                event=Ev.TASKLET_NET_TX,
                duration=lambda: models.net_tx.sample(node.rng_for("net")),
            ),
        )

    # ------------------------------------------------------------------
    # NFS operations (called from program points; the rank's context frame
    # must be the paused top of its CPU's stack)
    # ------------------------------------------------------------------
    def nfs_read(self, task: Task, then: Callable[[], None]) -> None:
        """Issue a blocking NFS read; ``then`` runs when the rank rewakes."""
        node = self.node
        cpu = node.cpus[task.cpu]
        self.reads += 1

        def syscall_exit() -> None:
            task.on_scheduled = self._read_resumer(task, then)
            node.scheduler.block_current(cpu, task)
            latency = node.config.models.nfs_latency.sample(node.rng_for("net"))
            node.engine.schedule_after(
                max(1, latency), self._make_response(task)
            )

        node.push_syscall(cpu, NR_READ, syscall_exit)

    def nfs_write(self, task: Task, then: Callable[[], None]) -> None:
        """Issue an async NFS write; ``then`` runs when the syscall returns."""
        node = self.node
        cpu = node.cpus[task.cpu]
        self.writes += 1

        def syscall_exit() -> None:
            # Hand off to the DMA engine: TX tasklet runs right now on the
            # issuing CPU (local_bh_enable at syscall exit).
            node.softirq.raise_vec(cpu.index, Vec.NET_TX)
            # A transmit-completion / ACK interrupt arrives later.
            rng = node.rng_for("net")
            if rng.random() < node.config.tx_completion_irq_prob:
                delay = node.config.models.nfs_latency.sample(rng)
                node.engine.schedule_after(max(1, delay), self._make_ack_irq())
            then()
            node.softirq.run(cpu)

        node.push_syscall(cpu, NR_WRITE, syscall_exit)

    def inject_ack_irq(self) -> None:
        """An interrupt carrying only protocol traffic (ACKs, attribute
        refreshes).  Workload profiles drive these to match Table II."""
        self._make_ack_irq()()

    # ------------------------------------------------------------------
    def _read_resumer(
        self, task: Task, then: Callable[[], None]
    ) -> Callable[[], None]:
        def resumed() -> None:
            task.on_scheduled = None
            then()

        return resumed

    def _make_response(self, task: Task) -> Callable[[], None]:
        def response() -> None:
            node = self.node
            cpu = self._pick_irq_cpu()
            self._rx_ready[cpu.index].append(self._make_completion(task))
            rng = node.rng_for("net")
            if rng.random() < node.config.napi_poll_prob:
                # NIC already in polling mode: no fresh interrupt.
                self.napi_polls += 1
                node.softirq.raise_vec(cpu.index, Vec.NET_RX)
                if not node.softirq.kick(cpu):
                    # CPU busy in kernel: the vector drains at the next
                    # interrupt/softirq cycle, like a deferred NAPI poll.
                    pass
            else:
                self.rx_irqs += 1
                node.irq.deliver(
                    cpu,
                    Ev.IRQ_NET,
                    node.config.models.net_irq.sample(rng),
                    raise_vecs=[Vec.NET_RX],
                )

        return response

    def _make_completion(self, task: Task) -> Callable[[CPU], None]:
        def complete_on_cpu(cpu: CPU) -> None:
            node = self.node
            rpciod = node.rpciod[cpu.index]
            service = node.config.models.rpciod_service.sample(node.rng_for("net"))
            node.scheduler.activate_daemon(
                rpciod,
                cpu.index,
                service,
                on_done=lambda: node.scheduler.wake_task(task, waker_cpu=cpu),
            )

        return complete_on_cpu

    def _rx_post(self, cpu: CPU) -> None:
        """net_rx_action finished on this CPU: hand completions to rpciod."""
        ready = self._rx_ready[cpu.index]
        if not ready:
            return
        self._rx_ready[cpu.index] = []
        for complete in ready:
            complete(cpu)

    def _make_ack_irq(self) -> Callable[[], None]:
        def ack() -> None:
            node = self.node
            cpu = self._pick_irq_cpu()
            self.ack_irqs += 1
            node.irq.deliver(
                cpu,
                Ev.IRQ_NET,
                node.config.models.net_irq.sample(node.rng_for("net")),
            )

        return ack

    def _pick_irq_cpu(self) -> CPU:
        """Interrupt routing per the configured affinity policy."""
        node = self.node
        if node.config.irq_affinity == "cpu0":
            # Default-affinity behaviour: every device interrupt hits core
            # 0, concentrating the I/O noise on one rank.
            return node.cpus[0]
        cpu = node.cpus[self._next_irq_cpu]
        self._next_irq_cpu = (self._next_irq_cpu + 1) % node.config.ncpus
        return cpu
