"""Domain rebalancing (``run_rebalance_domains``).

Triggered from the scheduler tick when a CPU's ``next_balance`` deadline
passes.  The paper distinguishes its *direct* overhead (the softirq's own
execution time — Figure 6 shows per-application distributions) from its
*indirect* overhead (cache warm-up after a migration).  Both are modeled:
the softirq's duration comes from a per-application model, and when it finds
queued work on a busy CPU while another CPU idles it migrates one activation,
charging a warm-up penalty.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.simkernel.cpu import CPU, FrameKind
from repro.simkernel.softirq import SoftirqHandler, Vec
from repro.tracing.events import Ev

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.node import ComputeNode


class LoadBalancer:
    def __init__(self, node: "ComputeNode") -> None:
        self.node = node
        interval = node.config.rebalance_interval_ns
        self._next_balance: List[int] = [
            interval + i * (interval // (node.config.ncpus + 1))
            for i in range(node.config.ncpus)
        ]
        self.runs = 0

    def start(self) -> None:
        node = self.node
        node.softirq.register(
            Vec.SCHED,
            SoftirqHandler(
                event=Ev.SOFTIRQ_SCHED,
                duration=lambda: node.config.models.rebalance.sample(
                    node.rng_for("sched")
                ),
                post=self._rebalance,
            ),
        )

    def due(self, cpu: CPU, now: int) -> bool:
        """Checked from the timer tick: is this CPU's balance deadline past?"""
        if now >= self._next_balance[cpu.index]:
            interval = self.node.config.rebalance_interval_ns
            jitter = int(self.node.rng_for("sched").integers(0, interval // 4 + 1))
            self._next_balance[cpu.index] = now + interval + jitter
            return True
        return False

    # ------------------------------------------------------------------
    def _rebalance(self, cpu: CPU) -> None:
        """Body of run_rebalance_domains: move work from busy to idle CPUs."""
        self.runs += 1
        node = self.node
        scheduler = node.scheduler
        busiest = None
        depth = 0
        for other in node.cpus:
            d = scheduler.queue_depth(other.index)
            if d > depth:
                busiest, depth = other, d
        if busiest is None or busiest.index == cpu.index:
            return
        # Pull queued work if this CPU is idle (running the idle loop) while
        # another CPU has activations waiting behind its current context.
        bottom = cpu.stack[0] if cpu.stack else None
        if bottom is not None and bottom.kind == FrameKind.IDLE and depth >= 1:
            scheduler.migrate_queued(busiest.index, cpu.index)
