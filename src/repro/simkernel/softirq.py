"""Softirqs and tasklets.

Linux defers most interrupt work to *softirqs* that run at interrupt exit.
Two details matter for the paper's analysis and are modeled here:

* softirqs of the same type may run concurrently on different CPUs, but
  *tasklets* (``net_rx_action`` / ``net_tx_action`` in the paper's
  terminology) of the same type are serialized system-wide (paper footnote 5);
* a nested interrupt never starts softirq processing if the CPU is already
  inside a softirq — the pending vector drains when the outer softirq
  finishes (this is what makes nested-event accounting non-trivial).
"""

from __future__ import annotations

from enum import IntEnum
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.simkernel.cpu import CPU, Frame, FrameKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.node import ComputeNode


class Vec(IntEnum):
    """Softirq vectors, in Linux priority order (lower runs first)."""

    TIMER = 0      # run_timer_softirq
    NET_TX = 1     # net_tx_action (tasklet semantics)
    NET_RX = 2     # net_rx_action (tasklet semantics)
    SCHED = 3      # run_rebalance_domains
    RCU = 4        # rcu_process_callbacks


#: Vectors with tasklet serialization semantics.
TASKLET_VECS = frozenset((Vec.NET_TX, Vec.NET_RX))


class SoftirqHandler:
    """One vector's behaviour: how long it runs and what happens after."""

    def __init__(
        self,
        event: int,
        duration: Callable[[], int],
        post: Optional[Callable[[CPU], None]] = None,
    ) -> None:
        #: Paired trace event id for this vector's frame.
        self.event = event
        #: Callable returning a sampled duration in nanoseconds.
        self.duration = duration
        #: Called after the frame exits (e.g. net_rx wakes rpciod).
        self.post = post


class SoftirqDispatcher:
    """Per-CPU pending vectors plus global tasklet serialization."""

    def __init__(self, node: "ComputeNode") -> None:
        self.node = node
        ncpus = node.config.ncpus
        self._pending: List[List[bool]] = [
            [False] * len(Vec) for _ in range(ncpus)
        ]
        self._handlers: Dict[int, SoftirqHandler] = {}
        #: Tasklet locks: vec -> CPU index currently running it, or None.
        self._tasklet_owner: Dict[int, Optional[int]] = {
            int(v): None for v in TASKLET_VECS
        }
        #: Count of serialization conflicts (a tasklet found busy elsewhere).
        self.tasklet_conflicts = 0
        #: Per-vector execution counters, for tests and quick stats.
        self.run_counts: Dict[int, int] = {int(v): 0 for v in Vec}

    def register(self, vec: Vec, handler: SoftirqHandler) -> None:
        self._handlers[int(vec)] = handler

    # ------------------------------------------------------------------
    def raise_vec(self, cpu_index: int, vec: Vec) -> None:
        """Mark a vector pending on a CPU (like ``raise_softirq``)."""
        self._pending[cpu_index][int(vec)] = True

    def pending_vecs(self, cpu_index: int) -> List[int]:
        return [i for i, p in enumerate(self._pending[cpu_index]) if p]

    def run(self, cpu: CPU) -> bool:
        """Start softirq processing on a CPU if allowed.

        Called at interrupt exit and by NAPI-style direct kicks.  Returns
        True if a softirq frame was pushed.  Processing is skipped when the
        CPU is already inside a softirq/tasklet frame (the Linux
        ``in_interrupt()`` check); the pending vector will drain when the
        current one finishes.
        """
        if self._in_softirq(cpu):
            return False
        return self._push_next(cpu)

    def kick(self, cpu: CPU) -> bool:
        """Force processing to start even with no interrupt context.

        Models NAPI polling / ``ksoftirqd`` picking up a raised vector: if
        the CPU is quiescent (running its context frame), softirq processing
        begins immediately, pausing user code.
        """
        top = cpu.top
        if top is None or not top.running:
            return False
        if top.kind not in (FrameKind.USER, FrameKind.IDLE, FrameKind.DAEMON):
            return False
        if self._in_softirq(cpu):
            return False
        return self._push_next(cpu)

    # ------------------------------------------------------------------
    def _in_softirq(self, cpu: CPU) -> bool:
        softirq_events = {h.event for h in self._handlers.values()}
        return any(
            f.kind == FrameKind.KACT and f.event in softirq_events
            for f in cpu.stack
        )

    def _push_next(self, cpu: CPU) -> bool:
        pending = self._pending[cpu.index]
        for vec in sorted(self._handlers):
            if not pending[vec]:
                continue
            if vec in self._tasklet_owner:
                owner = self._tasklet_owner[vec]
                if owner is not None and owner != cpu.index:
                    # Tasklet of this type is running on another CPU: it
                    # stays pending here and is retried on the next cycle.
                    self.tasklet_conflicts += 1
                    continue
            pending[vec] = False
            handler = self._handlers[vec]
            if vec in self._tasklet_owner:
                self._tasklet_owner[vec] = cpu.index
            self.run_counts[vec] += 1
            frame = Frame(
                FrameKind.KACT,
                event=handler.event,
                name=f"softirq/{Vec(vec).name.lower()}",
                remaining=max(1, handler.duration()),
                on_exit=self._make_on_exit(cpu, vec, handler),
            )
            cpu.push(frame)
            return True
        return False

    def _make_on_exit(
        self, cpu: CPU, vec: int, handler: SoftirqHandler
    ) -> Callable[[], None]:
        def on_exit() -> None:
            if vec in self._tasklet_owner:
                self._tasklet_owner[vec] = None
            if handler.post is not None:
                handler.post(cpu)
            # Drain remaining pending vectors (including ones raised by
            # nested interrupts while we ran).
            self._push_next(cpu)

        return on_exit
