"""Discrete-event simulation core.

A single binary-heap event queue over an integer-nanosecond clock.  Ties are
broken by insertion order so runs are fully deterministic (DESIGN.md §6).
Cancellation is lazy: a cancelled event stays in the heap but is skipped when
popped, which keeps ``cancel`` O(1) — the simulated kernel cancels pending
completions constantly (every time an interrupt nests above a running
activity).
"""

from __future__ import annotations

import heapq
import time
import warnings
from typing import Callable, List, Optional

from repro import obs
from repro.util.rng import RngLike, make_rng


class SimBudgetWarning(RuntimeWarning):
    """A ``run_to_completion`` stopped at its event budget with live events
    still queued — the simulation was truncated, not completed."""


class SimEvent:
    """A scheduled callback.  Returned by :meth:`Engine.schedule` as a handle."""

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "SimEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<SimEvent t={self.time} seq={self.seq} {state}>"


class Engine:
    """The simulation clock and event queue.

    Parameters
    ----------
    seed:
        Root seed (or Generator).  Subsystems derive their own streams from
        :attr:`rng` via :func:`repro.util.rng.spawn_rngs`.
    """

    def __init__(self, seed: RngLike = 0) -> None:
        self.now: int = 0
        self.rng = make_rng(seed)
        self._heap: List[SimEvent] = []
        self._seq = 0
        self._running = False
        #: Lifetime count of executed (non-cancelled) events; one integer
        #: add per event keeps the hot loop free of any obs calls.
        self.events_executed = 0
        #: Set when a ``run_to_completion`` hit its event budget.
        self.budget_exhausted = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, at_ns: int, fn: Callable[[], None]) -> SimEvent:
        """Schedule ``fn`` to run at absolute time ``at_ns``."""
        if at_ns < self.now:
            raise ValueError(
                f"cannot schedule in the past (now={self.now}, at={at_ns})"
            )
        ev = SimEvent(at_ns, self._seq, fn)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_after(self, delay_ns: int, fn: Callable[[], None]) -> SimEvent:
        """Schedule ``fn`` to run ``delay_ns`` from now."""
        if delay_ns < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self.now + delay_ns, fn)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, or None if the queue is drained."""
        self._drop_cancelled_head()
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the next live event.  Returns False when the queue is empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return False
        ev = heapq.heappop(self._heap)
        self.now = ev.time
        ev.fn()
        self.events_executed += 1
        return True

    def run_until(self, t_end_ns: int) -> None:
        """Run all events with timestamps <= ``t_end_ns``, then advance to it.

        Events scheduled *during* execution with timestamps inside the window
        run too, in timestamp order.
        """
        if self._running:
            raise RuntimeError("Engine.run_until is not reentrant")
        self._running = True
        track = obs.enabled()
        if track:
            wall0 = time.perf_counter_ns()  # noiselint: disable=DET001 -- host wall clock feeds obs throughput gauges only, never simulated state
            virt0 = self.now
            exec0 = self.events_executed
        try:
            executed = 0
            while True:  # hot: the main event loop; plain tallies only
                self._drop_cancelled_head()
                if not self._heap or self._heap[0].time > t_end_ns:
                    break
                ev = heapq.heappop(self._heap)
                self.now = ev.time
                ev.fn()
                executed += 1
            self.events_executed += executed
            if t_end_ns > self.now:
                self.now = t_end_ns
        finally:
            self._running = False
        if track:
            self._report_run(wall0, virt0, exec0)

    def _report_run(self, wall0: int, virt0: int, exec0: int) -> None:
        """Record the finished window's throughput gauges (cold path)."""
        wall_ns = max(1, time.perf_counter_ns() - wall0)  # noiselint: disable=DET001 -- host wall clock feeds obs throughput gauges only, never simulated state
        executed = self.events_executed - exec0
        obs.counter("sim.events").inc(executed)
        obs.gauge("sim.events_per_wall_sec").set(executed * 1e9 / wall_ns)
        obs.gauge("sim.virtual_wall_ratio").set((self.now - virt0) / wall_ns)
        obs.gauge("sim.pending_queue_depth").set(self.pending_count())

    def run_to_completion(self, max_events: int = 10_000_000) -> int:
        """Drain the queue.  Returns the number of events executed.

        A simulation that reaches ``max_events`` with live events still
        queued is *truncated*, not completed: execution stops, the engine's
        :attr:`budget_exhausted` flag is set, an obs counter is bumped and a
        :class:`SimBudgetWarning` is emitted so callers can tell the two
        apart.
        """
        executed = 0
        self.budget_exhausted = False
        # hot: one iteration per simulated event
        while self.step():
            executed += 1
            if executed >= max_events and self.peek_time() is not None:
                self.budget_exhausted = True
                break
        if self.budget_exhausted:
            if obs.enabled():
                obs.counter("sim.budget_exhausted").inc()
            warnings.warn(
                f"event budget exhausted after {executed} events with "
                f"{self.pending_count()} still pending — simulation "
                f"truncated at t={self.now}",
                SimBudgetWarning,
                stacklevel=2,
            )
        return executed

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    # ------------------------------------------------------------------
    def _drop_cancelled_head(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
