"""Kernel-level noise injection.

The complementary methodology from the paper's related work (Ferreira,
Bridges & Brightwell, SC'08: "Characterizing application sensitivity to OS
interference using kernel-level noise injection"): instead of *measuring*
the noise an OS produces, *inject* noise with known parameters and observe
the application.  Here it serves two purposes:

* **analyzer validation** — the injector keeps exact ground truth (count
  and nanoseconds injected per CPU), so the offline analysis can be checked
  against a known-true noise profile end to end
  (``benchmarks/bench_ext_injection.py``);
* **sensitivity studies** — the classic high-frequency/short-duration vs
  low-frequency/long-duration comparison at equal noise budget (the paper's
  Section II resonance discussion).

Injected events appear in traces as paired ``injected_noise`` activities
and are classified as noise (category OTHER) under the usual runnable rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, TYPE_CHECKING, Union

from repro.simkernel.cpu import Frame, FrameKind
from repro.simkernel.distributions import Constant, DurationModel
from repro.tracing.events import Ev

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.node import ComputeNode


@dataclass(frozen=True)
class InjectionSpec:
    """One synthetic noise source.

    Parameters
    ----------
    pattern:
        ``"periodic"`` (fixed period, deterministic — resonance studies) or
        ``"poisson"`` (exponential gaps — background-daemon-like).
    rate_per_sec:
        Events per second *per target CPU*.
    duration:
        Event duration model (or a plain int of nanoseconds).
    cpus:
        Target CPU indices; None = all CPUs.
    phase_ns:
        Start offset of the first event (periodic pattern only).
    tag:
        Value carried in the trace records' ``arg`` field, letting offline
        analysis tell multiple injected sources apart (noise cloning).
    """

    pattern: str
    rate_per_sec: float
    duration: Union[DurationModel, int]
    cpus: Optional[Sequence[int]] = None
    phase_ns: int = 0
    tag: int = 0

    def __post_init__(self) -> None:
        if self.pattern not in ("periodic", "poisson"):
            raise ValueError("pattern must be 'periodic' or 'poisson'")
        if self.rate_per_sec <= 0:
            raise ValueError("rate must be positive")
        if self.phase_ns < 0:
            raise ValueError("phase must be non-negative")

    def duration_model(self) -> DurationModel:
        if isinstance(self.duration, int):
            return Constant(self.duration)
        return self.duration

    @property
    def period_ns(self) -> int:
        return max(1, int(1e9 / self.rate_per_sec))


class NoiseInjector:
    """Drives one :class:`InjectionSpec` on a node, keeping ground truth."""

    def __init__(self, node: "ComputeNode", spec: InjectionSpec) -> None:
        self.node = node
        self.spec = spec
        self.targets: List[int] = (
            list(spec.cpus)
            if spec.cpus is not None
            else list(range(node.config.ncpus))
        )
        for cpu in self.targets:
            if not 0 <= cpu < node.config.ncpus:
                raise ValueError(f"cpu {cpu} out of range")
        self._model = spec.duration_model()
        #: Ground truth: events actually injected and their sampled cost.
        self.injected_count = 0
        self.injected_ns = 0
        self._started = False

    def start(self) -> "NoiseInjector":
        if self._started:
            raise RuntimeError("injector already started")
        self._started = True
        for cpu_index in self.targets:
            if self.spec.pattern == "periodic":
                first = self.spec.phase_ns + self.spec.period_ns
            else:
                first = self._gap()
            self.node.engine.schedule_after(
                max(1, first), self._make_fire(cpu_index)
            )
        return self

    # ------------------------------------------------------------------
    def _gap(self) -> int:
        rng = self.node.rng_for("daemons")
        return max(1, int(rng.exponential(self.spec.period_ns)))

    def _make_fire(self, cpu_index: int):
        def fire() -> None:
            duration = max(1, self._model.sample(self.node.rng_for("daemons")))
            self.injected_count += 1
            self.injected_ns += duration
            cpu = self.node.cpus[cpu_index]
            cpu.push(
                Frame(
                    FrameKind.KACT,
                    event=Ev.INJECTED,
                    name="injected_noise",
                    remaining=duration,
                    arg=self.spec.tag,
                )
            )
            gap = (
                self.spec.period_ns
                if self.spec.pattern == "periodic"
                else self._gap()
            )
            self.node.engine.schedule_after(gap, fire)

        return fire


def inject(
    node: "ComputeNode",
    rate_per_sec: float,
    duration: Union[DurationModel, int],
    pattern: str = "periodic",
    cpus: Optional[Sequence[int]] = None,
) -> NoiseInjector:
    """Convenience: build and start an injector on a (not yet run) node."""
    spec = InjectionSpec(
        pattern=pattern, rate_per_sec=rate_per_sec, duration=duration, cpus=cpus
    )
    return NoiseInjector(node, spec).start()
