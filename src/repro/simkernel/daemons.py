"""Daemon activity drivers.

Beyond ``rpciod`` (driven by the NFS path in :mod:`repro.simkernel.network`),
nodes run other daemons that wake on their own schedule and preempt
application ranks: the ``eventd`` daemon the paper catches preempting FTQ
(Figure 1b), the UMT case's Python helper processes, and the lttng-noise
collection daemon itself.  :class:`DaemonDriver` models any of these as a
Poisson activation process with a service-time model and a CPU placement
policy.
"""

from __future__ import annotations

from typing import Union, TYPE_CHECKING

from repro.simkernel.distributions import DurationModel
from repro.simkernel.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.node import ComputeNode


class DaemonDriver:
    """Periodically activates a daemon task.

    Parameters
    ----------
    rate_per_sec:
        Mean activations per second (Poisson process); 0 disables.
    service:
        Burst duration model.
    cpu:
        Fixed CPU index, or ``"random"`` to hit a uniformly random CPU each
        activation (daemons that are not pinned).
    via_timer:
        When True, activations are driven by *software timers*: the wakeup
        happens inside ``run_timer_softirq`` on the target CPU — exactly how
        kernel timers wake daemons, and the mechanism behind the paper's
        Figure 2b chain (tick, softirq, schedule, daemon, schedule).
    """

    def __init__(
        self,
        node: "ComputeNode",
        task: Task,
        rate_per_sec: float,
        service: DurationModel,
        cpu: Union[int, str] = "random",
        via_timer: bool = False,
    ) -> None:
        if rate_per_sec < 0:
            raise ValueError("rate must be non-negative")
        if isinstance(cpu, int) and not 0 <= cpu < node.config.ncpus:
            raise ValueError("cpu index out of range")
        self.node = node
        self.task = task
        self.rate_per_sec = rate_per_sec
        self.service = service
        self.cpu = cpu
        self.via_timer = via_timer
        self.activations = 0
        self._started = False

    def start(self) -> None:
        if self._started or self.rate_per_sec <= 0:
            return
        self._started = True
        self._schedule_next()

    def _pick_cpu(self) -> int:
        if self.cpu == "random":
            rng = self.node.rng_for("daemons")
            return int(rng.integers(0, self.node.config.ncpus))
        return int(self.cpu)

    def _schedule_next(self) -> None:
        rng = self.node.rng_for("daemons")
        gap = max(1, int(rng.exponential(1e9 / self.rate_per_sec)))
        target = self._pick_cpu()
        if self.via_timer:
            # Fires inside run_timer_softirq on the target CPU, like a
            # kernel timer callback calling wake_up_process().
            self.node.timers.add_timer(
                gap, lambda: self._activate(target), cpu=target
            )
        else:
            self.node.engine.schedule_after(gap, lambda: self._activate(target))

    def _activate(self, cpu_index: int) -> None:
        node = self.node
        rng = node.rng_for("daemons")
        self.activations += 1
        node.scheduler.activate_daemon(
            self.task, cpu_index, self.service.sample(rng)
        )
        self._schedule_next()
