"""Simulated Linux compute-node substrate.

The paper instruments a real Linux kernel; this package provides the
equivalent substrate for a pure-Python reproduction: a deterministic
discrete-event simulation of an HPC compute node whose kernel emits the same
event vocabulary through the same structural mechanisms (DESIGN.md §2-3).
"""

from repro.simkernel.config import ActivityModels, NodeConfig
from repro.simkernel.distributions import (
    Bimodal,
    Constant,
    DurationModel,
    Exponential,
    Mixture,
    ShiftedLogNormal,
    Uniform,
    from_stats,
)
from repro.simkernel.engine import Engine, SimEvent
from repro.simkernel.injection import InjectionSpec, NoiseInjector, inject
from repro.simkernel.memory import PageFaultModel
from repro.simkernel.node import ComputeNode, RankProgram
from repro.simkernel.task import Task, TaskKind, TaskState

__all__ = [
    "ActivityModels",
    "NodeConfig",
    "Bimodal",
    "Constant",
    "DurationModel",
    "Exponential",
    "Mixture",
    "ShiftedLogNormal",
    "Uniform",
    "from_stats",
    "Engine",
    "SimEvent",
    "InjectionSpec",
    "NoiseInjector",
    "inject",
    "PageFaultModel",
    "ComputeNode",
    "RankProgram",
    "Task",
    "TaskKind",
    "TaskState",
]
