"""Node configuration: structure knobs + per-activity duration models.

The kernel *mechanisms* (tick, softirqs, scheduler, NFS path) are generic;
what differs between workloads is how long each activity takes and how often
workload-driven events occur.  :class:`ActivityModels` collects the duration
models (the per-application instances are built from the paper's tables by
:mod:`repro.workloads.profiles`); :class:`NodeConfig` collects the structural
parameters of the machine, which default to the paper's testbed: 8 cores,
HZ=100 (Tables V/VI show 100 timer events/sec), NFS-only I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.simkernel.distributions import (
    Constant,
    DurationModel,
    ShiftedLogNormal,
    from_stats,
)
from repro.simkernel.memory import PageFaultModel
from repro.util.units import MSEC, USEC


@dataclass(frozen=True)
class ActivityModels:
    """Duration models for every kernel activity the node performs."""

    timer_irq: DurationModel
    timer_softirq: DurationModel
    rcu: DurationModel
    rebalance: DurationModel
    sched_call: DurationModel
    syscall: DurationModel
    page_fault: PageFaultModel
    net_irq: DurationModel
    net_rx: DurationModel
    net_tx: DurationModel
    rpciod_service: DurationModel
    nfs_latency: DurationModel

    @staticmethod
    def default() -> "ActivityModels":
        """Generic, paper-plausible defaults (FTQ-machine flavoured)."""
        return ActivityModels(
            timer_irq=from_stats(800, 2200, 30_000),
            timer_softirq=from_stats(200, 1800, 50_000),
            rcu=from_stats(100, 300, 5_000),
            rebalance=from_stats(300, 1800, 30_000),
            sched_call=from_stats(150, 300, 2_000, sigma=0.4),
            syscall=from_stats(200, 700, 10_000),
            page_fault=PageFaultModel(
                minor=from_stats(250, 2500, 30_000),
                major=from_stats(100_000, 400_000, 2_000_000),
                major_prob=0.001,
            ),
            net_irq=from_stats(500, 1500, 350_000),
            net_rx=from_stats(180, 3000, 100_000),
            net_tx=from_stats(170, 500, 9_000, sigma=0.4),
            rpciod_service=from_stats(2_000, 15_000, 500_000),
            nfs_latency=from_stats(50_000, 300_000, 5_000_000),
        )


@dataclass(frozen=True)
class NodeConfig:
    """Structural configuration of the simulated compute node."""

    #: Number of CPUs (the paper's testbed: dual quad-core Opteron).
    ncpus: int = 8
    #: Timer tick frequency; 100 in the paper's configuration.
    hz: int = 100
    #: Root seed for all random streams.
    seed: int = 0
    #: Per-activity duration models.
    models: ActivityModels = field(default_factory=ActivityModels.default)
    #: How often each CPU runs run_rebalance_domains.
    rebalance_interval_ns: int = 32 * MSEC
    #: Raise the RCU softirq every N ticks (1 = every tick).
    rcu_every_ticks: int = 1
    #: Indirect migration cost (cache warm-up) added to a migrated burst.
    migration_warmup_ns: int = 50 * USEC
    #: Round-robin timeslice between equal-priority application ranks
    #: sharing a CPU (oversubscription); CFS-flavoured default.
    timeslice_ns: int = 24 * MSEC
    #: Probability a receive completion is processed by NAPI polling
    #: (no fresh interrupt); tunes Table II's irq freq vs Table III's.
    napi_poll_prob: float = 0.1
    #: Probability an async write's completion raises an interrupt later.
    tx_completion_irq_prob: float = 0.5
    #: Where network interrupts land: "round-robin" (irqbalance-style,
    #: spreads the noise evenly) or "cpu0" (default-affinity-style, piles
    #: all I/O noise on one core — and one rank).
    irq_affinity: str = "round-robin"
    #: Tickless idle (NO_HZ): idle CPUs skip their periodic tick, like
    #: CONFIG_NO_HZ kernels (and like the lightweight kernels the paper
    #: compares against, which "do not take periodic timer interrupts").
    nohz_idle: bool = False
    #: Jones et al. / HPL-style scheduling policy (paper refs [23][24]):
    #: application ranks outrank *user* daemons, so eventd/python-style
    #: daemons run only when a CPU has nothing better to do.  Kernel
    #: daemons (rpciod) keep their priority.
    deprioritize_user_daemons: bool = False

    def __post_init__(self) -> None:
        if self.ncpus <= 0:
            raise ValueError("ncpus must be positive")
        if self.hz <= 0 or self.hz > 10_000:
            raise ValueError("hz must be in (0, 10000]")
        if not 0.0 <= self.napi_poll_prob <= 1.0:
            raise ValueError("napi_poll_prob must be a probability")
        if not 0.0 <= self.tx_completion_irq_prob <= 1.0:
            raise ValueError("tx_completion_irq_prob must be a probability")
        if self.irq_affinity not in ("round-robin", "cpu0"):
            raise ValueError("irq_affinity must be 'round-robin' or 'cpu0'")

    def with_models(self, models: ActivityModels) -> "NodeConfig":
        return replace(self, models=models)

    def with_seed(self, seed: int) -> "NodeConfig":
        return replace(self, seed=seed)
