"""Demand-paged virtual memory: the page-fault noise source.

The paper finds page faults can dominate OS noise (82.4 % for AMG, 86.7 % for
UMT — Figure 3) with frequencies *above* the timer interrupt's (Table I) and
per-application duration distributions (Figure 4).  Faults here are a
workload-modulated Poisson process over each rank's user-mode execution:
while a rank computes, the next fault is exponentially distributed at the
rank's current fault rate (workloads change the rate per phase — LAMMPS
faults mostly during initialization, AMG throughout its whole run, Figure 5).

Each fault is either *minor* (page-on-demand / copy-on-write, the bulk of the
distribution) or *major* (an NFS-backed page read, the rare multi-millisecond
events behind Table I's extreme maxima).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.simkernel.cpu import CPU, Frame, FrameKind
from repro.simkernel.distributions import DurationModel
from repro.simkernel.engine import SimEvent
from repro.simkernel.task import Task
from repro.tracing.events import Ev

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.node import ComputeNode


@dataclass(frozen=True)
class PageFaultModel:
    """Per-application fault cost model.

    ``minor`` carries the distribution's body (and its shape, e.g. AMG's two
    peaks); a fault is *major* with probability ``major_prob`` and then draws
    from ``major`` instead.
    """

    minor: DurationModel
    major: Optional[DurationModel] = None
    major_prob: float = 0.0

    def sample(self, rng: np.random.Generator) -> "Tuple[int, bool]":
        """Return ``(duration_ns, is_major)``."""
        if self.major is not None and self.major_prob > 0.0:
            if rng.random() < self.major_prob:
                return max(1, self.major.sample(rng)), True
        return max(1, self.minor.sample(rng)), False


class _FaultState:
    __slots__ = ("rate_per_sec", "model", "pending")

    def __init__(self) -> None:
        self.rate_per_sec = 0.0
        self.model: Optional[PageFaultModel] = None
        self.pending: Optional[SimEvent] = None


class MemoryManager:
    """Drives per-rank page-fault processes."""

    def __init__(self, node: "ComputeNode") -> None:
        self.node = node
        self._states: Dict[int, _FaultState] = {}
        self.fault_count = 0
        self.major_count = 0

    # ------------------------------------------------------------------
    def register_task(self, task: Task) -> None:
        self._states[task.pid] = _FaultState()

    def set_fault_rate(self, task: Task, rate_per_sec: float) -> None:
        """Change a rank's fault rate (workload phase transitions)."""
        if rate_per_sec < 0:
            raise ValueError("rate must be non-negative")
        state = self._states[task.pid]
        state.rate_per_sec = rate_per_sec
        # Re-arm if the rank is on-CPU right now.
        self._cancel(state)
        if task.cpu is not None:
            cpu = self.node.cpus[task.cpu]
            frame = cpu.stack[0] if cpu.stack else None
            if frame is not None and frame.task is task and frame.running:
                self._arm(task, state)

    def set_fault_model(self, task: Task, model: PageFaultModel) -> None:
        self._states[task.pid].model = model

    # Frame hooks -------------------------------------------------------
    def on_user_resume(self, task: Task) -> None:
        state = self._states.get(task.pid)
        if state is not None:
            self._arm(task, state)

    def on_user_pause(self, task: Task) -> None:
        state = self._states.get(task.pid)
        if state is not None:
            self._cancel(state)

    # ------------------------------------------------------------------
    def _arm(self, task: Task, state: _FaultState) -> None:
        self._cancel(state)
        if state.rate_per_sec <= 0 or state.model is None:
            return
        rng = self.node.rng_for("memory")
        gap_ns = max(1, int(rng.exponential(1e9 / state.rate_per_sec)))
        state.pending = self.node.engine.schedule_after(
            gap_ns, self._make_fault(task, state)
        )

    def _cancel(self, state: _FaultState) -> None:
        if state.pending is not None:
            state.pending.cancel()
            state.pending = None

    def _make_fault(self, task: Task, state: _FaultState):
        def fault() -> None:
            state.pending = None
            if task.cpu is None:
                return
            cpu = self.node.cpus[task.cpu]
            frame = cpu.top
            # The pending event is cancelled whenever the user frame pauses,
            # so the rank must be the running top-of-stack here.
            if frame is None or frame.task is not task or not frame.running:
                return
            duration, major = state.model.sample(self.node.rng_for("memory"))
            self.fault_count += 1
            if major:
                self.major_count += 1
            cpu.push(
                Frame(
                    FrameKind.KACT,
                    event=Ev.EXC_PAGE_FAULT,
                    name="page_fault",
                    remaining=duration,
                    arg=1 if major else 0,
                )
            )

        return fault
