"""Hardware interrupt delivery.

An interrupt preempts whatever the target CPU is doing — user code, an
exception handler, even another interrupt — by pushing a top-half frame onto
the CPU's frame stack.  At top-half exit, softirq processing runs (unless the
CPU was already inside a softirq, in which case the raised vectors stay
pending; see :mod:`repro.simkernel.softirq`).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, TYPE_CHECKING

from repro.simkernel.cpu import CPU, Frame, FrameKind
from repro.simkernel.softirq import Vec

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.node import ComputeNode


class InterruptController:
    """Delivers IRQs to CPUs and chains softirq processing at exit."""

    def __init__(self, node: "ComputeNode") -> None:
        self.node = node
        #: Total interrupts delivered, for tests and quick stats.
        self.delivered = 0

    def deliver(
        self,
        cpu: CPU,
        event: int,
        duration_ns: int,
        raise_vecs: Sequence[Vec] = (),
        post: Optional[Callable[[CPU], None]] = None,
        arg: int = 0,
    ) -> None:
        """Deliver one interrupt now.

        Parameters
        ----------
        event:
            Paired trace event for the top half (``Ev.IRQ_TIMER`` / ``IRQ_NET``).
        duration_ns:
            Sampled top-half duration.
        raise_vecs:
            Softirq vectors the top half raises before returning.
        post:
            Extra work at top-half exit, before softirq processing (e.g. the
            timer tick's scheduler bookkeeping).
        """
        self.delivered += 1
        dispatcher = self.node.softirq

        def on_exit() -> None:
            for vec in raise_vecs:
                dispatcher.raise_vec(cpu.index, vec)
            if post is not None:
                post(cpu)
            dispatcher.run(cpu)

        frame = Frame(
            FrameKind.KACT,
            event=event,
            name=f"irq/{event}",
            remaining=max(1, duration_ns),
            arg=arg,
            on_exit=on_exit,
        )
        cpu.push(frame)
