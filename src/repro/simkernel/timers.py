"""The periodic timer tick and software timers.

Every CPU takes a periodic timer interrupt (HZ per second, 100 in the
paper's configuration — Tables V/VI report exactly 100 ev/sec).  The top
half accounts process time; the paper's *bottom half*, ``run_timer_softirq``,
runs expired software timers and is a distinct — and often comparably
expensive — noise event, which is precisely the distinction the paper's
methodology surfaces (Figure 1d).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, TYPE_CHECKING

from repro.simkernel.cpu import CPU
from repro.simkernel.softirq import SoftirqHandler, Vec
from repro.tracing.events import Ev

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.node import ComputeNode


class SoftTimer:
    """A software timer (like ``struct timer_list``)."""

    __slots__ = ("timer_id", "expires", "callback", "period_ns", "cpu", "cancelled")

    def __init__(
        self,
        timer_id: int,
        expires: int,
        callback: Callable[[], None],
        period_ns: int,
        cpu: int,
    ) -> None:
        self.timer_id = timer_id
        self.expires = expires
        self.callback = callback
        self.period_ns = period_ns
        self.cpu = cpu
        self.cancelled = False

    def __lt__(self, other: "SoftTimer") -> bool:
        return (self.expires, self.timer_id) < (other.expires, other.timer_id)


class TimerSubsystem:
    """Per-CPU periodic tick + software-timer wheel."""

    def __init__(self, node: "ComputeNode") -> None:
        self.node = node
        self.tick_ns = 1_000_000_000 // node.config.hz
        #: Per-CPU software timer heaps.
        self._wheels: List[List[SoftTimer]] = [
            [] for _ in range(node.config.ncpus)
        ]
        self._next_timer_id = 1
        self._timers: Dict[int, SoftTimer] = {}
        self.ticks = 0
        self.skipped_idle_ticks = 0
        self.hrtimer_fires = 0
        self._rcu_every = node.config.rcu_every_ticks

    # ------------------------------------------------------------------
    # Software timers
    # ------------------------------------------------------------------
    def add_timer(
        self,
        delay_ns: int,
        callback: Callable[[], None],
        period_ns: int = 0,
        cpu: int = 0,
    ) -> int:
        """Arm a software timer; returns its id.  Fires inside
        ``run_timer_softirq`` on the owning CPU, like the kernel's wheel."""
        if delay_ns < 0 or period_ns < 0:
            raise ValueError("delays must be non-negative")
        timer = SoftTimer(
            self._next_timer_id,
            self.node.engine.now + delay_ns,
            callback,
            period_ns,
            cpu,
        )
        self._next_timer_id += 1
        self._timers[timer.timer_id] = timer
        heapq.heappush(self._wheels[cpu], timer)
        return timer.timer_id

    def cancel_timer(self, timer_id: int) -> None:
        timer = self._timers.pop(timer_id, None)
        if timer is not None:
            timer.cancelled = True

    def expired_count(self, cpu_index: int, now: int) -> int:
        return sum(
            1
            for t in self._wheels[cpu_index]
            if not t.cancelled and t.expires <= now
        )

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Register the TIMER softirq handler and start per-CPU ticks.

        Ticks are staggered across CPUs (as on real hardware, where per-CPU
        APIC timers are not phase-aligned) so all eight interrupts do not
        land on the same nanosecond.
        """
        node = self.node
        models = node.config.models
        node.softirq.register(
            Vec.TIMER,
            SoftirqHandler(
                event=Ev.SOFTIRQ_TIMER,
                duration=lambda: models.timer_softirq.sample(node.rng_for("timer")),
                post=self._run_expired,
            ),
        )
        node.softirq.register(
            Vec.RCU,
            SoftirqHandler(
                event=Ev.SOFTIRQ_RCU,
                duration=lambda: models.rcu.sample(node.rng_for("timer")),
            ),
        )
        stagger = self.tick_ns // (node.config.ncpus + 1)
        for cpu in node.cpus:
            node.engine.schedule(
                node.engine.now + self.tick_ns + cpu.index * stagger,
                self._make_tick(cpu),
            )

    def _make_tick(self, cpu: CPU) -> Callable[[], None]:
        def tick() -> None:
            self._tick(cpu)

        return tick

    def _tick(self, cpu: CPU) -> None:
        node = self.node
        if node.config.nohz_idle and self._cpu_is_idle(cpu):
            # Tickless idle: no interrupt fires; re-arm for the next period
            # (a real dyntick kernel programs the next pending deadline —
            # our software timers are checked on the next busy tick).
            self.skipped_idle_ticks += 1
            node.engine.schedule(
                node.engine.now + self.tick_ns, self._make_tick(cpu)
            )
            return
        self.ticks += 1
        rng = node.rng_for("timer")
        vecs = [Vec.TIMER]
        if self._rcu_every and self.ticks % self._rcu_every == 0:
            vecs.append(Vec.RCU)
        if node.balancer.due(cpu, node.engine.now):
            vecs.append(Vec.SCHED)
        node.irq.deliver(
            cpu,
            Ev.IRQ_TIMER,
            node.config.models.timer_irq.sample(rng),
            raise_vecs=vecs,
            post=self._scheduler_tick(cpu),
        )
        node.engine.schedule(node.engine.now + self.tick_ns, self._make_tick(cpu))

    # ------------------------------------------------------------------
    # High-resolution timers (paper §IV-E: "with the introduction of high
    # resolution timers in Linux 2.6.18, the local timer may raise an
    # interrupt any time a high resolution timer expires")
    # ------------------------------------------------------------------
    def add_hrtimer(
        self,
        delay_ns: int,
        callback: Callable[[], None],
        cpu: int = 0,
        period_ns: int = 0,
    ) -> None:
        """Arm a high-resolution timer: fires as its *own* timer interrupt
        at the exact deadline (not at wheel granularity).  The callback runs
        at interrupt exit, in interrupt context."""
        if delay_ns <= 0 or period_ns < 0:
            raise ValueError("hrtimer delay must be positive")
        node = self.node
        target = node.cpus[cpu]

        def fire() -> None:
            self.hrtimer_fires += 1
            rng = node.rng_for("timer")

            def post(_: CPU) -> None:
                target.emit_point(Ev.TIMER_EXPIRE, target.context_pid(), 0)
                callback()
                if period_ns:
                    node.engine.schedule_after(period_ns, fire)

            node.irq.deliver(
                target,
                Ev.IRQ_TIMER,
                node.config.models.timer_irq.sample(rng),
                raise_vecs=[Vec.TIMER],
                post=post,
            )

        node.engine.schedule_after(delay_ns, fire)

    @staticmethod
    def _cpu_is_idle(cpu: CPU) -> bool:
        from repro.simkernel.cpu import FrameKind

        return (
            len(cpu.stack) == 1
            and cpu.stack[0].kind == FrameKind.IDLE
            and cpu.stack[0].running
        )

    def _scheduler_tick(self, cpu: CPU) -> Callable[[CPU], None]:
        def post(_: CPU) -> None:
            self.node.scheduler.scheduler_tick(cpu)

        return post

    # ------------------------------------------------------------------
    def _run_expired(self, cpu: CPU) -> None:
        """Fire expired software timers (inside run_timer_softirq)."""
        node = self.node
        wheel = self._wheels[cpu.index]
        now = node.engine.now
        while wheel and wheel[0].expires <= now:
            timer = heapq.heappop(wheel)
            if timer.cancelled:
                continue
            cpu.emit_point(Ev.TIMER_EXPIRE, cpu.context_pid(), timer.timer_id)
            if timer.period_ns:
                timer.expires = now + timer.period_ns
                heapq.heappush(wheel, timer)
            else:
                self._timers.pop(timer.timer_id, None)
            timer.callback()
