"""The scheduler: context switches, daemon preemption, block/wake.

The paper's Figure 2b decomposes one preemption into *five* kernel events:
timer interrupt, ``run_timer_softirq``, the first half of ``schedule()``
(switching away from the application), the daemon's execution, and the second
half of ``schedule()`` (switching back).  This module produces exactly that
structure: every context switch is one ``schedule()`` activity frame whose
exit performs the swap and emits ``sched_switch`` / ``task_state`` point
events; a preemption is therefore two switches with the daemon burst between
them.

Priorities: daemons preempt application ranks (the paper: "the OS suspends a
process because there is another higher-priority process", e.g. ``rpciod``);
ranks never preempt daemons; everything preempts idle.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, TYPE_CHECKING

from repro.simkernel.cpu import CPU, Frame, FrameKind
from repro.simkernel.task import IDLE_PID, Task, TaskKind, TaskState
from repro.tracing.events import (
    Ev,
    encode_switch,
    encode_task_state,
    encode_migrate,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.node import ComputeNode


class DaemonActivation:
    """One queued daemon burst."""

    __slots__ = ("task", "service_ns", "on_done")

    def __init__(
        self,
        task: Task,
        service_ns: int,
        on_done: Optional[Callable[[], None]] = None,
    ) -> None:
        self.task = task
        self.service_ns = max(1, service_ns)
        #: Called when the burst finishes (e.g. rpciod completing an RPC
        #: wakes the rank that issued it).
        self.on_done = on_done


class Scheduler:
    def __init__(self, node: "ComputeNode") -> None:
        self.node = node
        ncpus = node.config.ncpus
        #: Per-CPU pending daemon activations (FIFO within a priority).
        self._queues: List[List[DaemonActivation]] = [
            [] for _ in range(ncpus)
        ]
        #: Per-CPU set of runnable (woken or preempted) ranks awaiting CPU.
        self._runnable: List[List[Task]] = [[] for _ in range(ncpus)]
        #: The activation currently running on each CPU, if any.
        self._active: List[Optional[DaemonActivation]] = [None] * ncpus
        #: When each CPU's current context was switched in (timeslicing).
        self._switched_in_at: List[int] = [0] * ncpus
        self.switches = 0
        self.preemptions = 0
        self.migrations = 0
        self.slice_rotations = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def start_rank(self, task: Task, frame: Frame) -> None:
        """Install a rank's initial user frame on its (idle) home CPU."""
        cpu = self.node.cpus[task.home_cpu]
        task.saved_frame = frame
        task.state = TaskState.RUNNABLE
        self._runnable[cpu.index].append(task)
        self._kick(cpu)

    def activate_daemon(
        self,
        task: Task,
        cpu_index: int,
        service_ns: int,
        on_done: Optional[Callable[[], None]] = None,
    ) -> None:
        """Queue a daemon burst on a CPU (a daemon wakeup)."""
        if task.state != TaskState.BLOCKED:
            # Already queued or running: serialize behind its current CPU so
            # one task never runs on two CPUs.
            cpu_index = task.cpu if task.cpu is not None else cpu_index
        else:
            task.state = TaskState.RUNNABLE
            task.wakeups += 1
            task.cpu = cpu_index
            cpu = self.node.cpus[cpu_index]
            cpu.emit_point(Ev.SCHED_WAKEUP, task.pid, task.pid)
            cpu.emit_point(
                Ev.TASK_STATE, task.pid, encode_task_state(task.pid, TaskState.RUNNABLE)
            )
        self._queues[cpu_index].append(DaemonActivation(task, service_ns, on_done))
        self._kick(self.node.cpus[cpu_index])

    def wake_task(self, task: Task, waker_cpu: Optional[CPU] = None) -> None:
        """Wake a blocked rank; it resumes on its home CPU."""
        if task.state != TaskState.BLOCKED:
            if task.is_application:
                # The wake raced with the task's in-flight block (it decided
                # to sleep but has not context-switched yet): remember it so
                # the block aborts, as the kernel's wait-queue protocol does.
                task.wake_pending = True
            return
        task.state = TaskState.RUNNABLE
        task.wakeups += 1
        cpu = waker_cpu if waker_cpu is not None else self.node.cpus[task.home_cpu]
        cpu.emit_point(Ev.SCHED_WAKEUP, task.pid, task.pid)
        cpu.emit_point(
            Ev.TASK_STATE, task.pid, encode_task_state(task.pid, TaskState.RUNNABLE)
        )
        home = self.node.cpus[task.home_cpu]
        self._runnable[home.index].append(task)
        self._kick(home)

    def block_current(self, cpu: CPU, task: Task) -> None:
        """Block the rank owning the CPU's context frame.

        Must be called while the context frame is the (paused) top of stack —
        i.e. from a program-point callback.  Pushes one ``schedule()`` frame
        whose exit switches to the next runnable entity.
        """
        if cpu.stack[0].task is not task:
            raise RuntimeError("block_current: task does not own this CPU")
        self._push_schedule(cpu, blocking=True)

    def scheduler_tick(self, cpu: CPU) -> None:
        """Per-tick bookkeeping: flag a reschedule if work is waiting or
        the running rank exhausted its timeslice against an equal peer."""
        if self._has_better_work(cpu) or self._slice_expired(cpu):
            cpu.need_resched = True

    # Hook called by the CPU when it drains to its context frame with
    # need_resched set.
    def resched(self, cpu: CPU) -> None:
        cpu.need_resched = False
        if self._has_better_work(cpu):
            self._push_schedule(cpu, blocking=False)
        elif self._slice_expired(cpu):
            self.slice_rotations += 1
            self._push_schedule(cpu, blocking=False)

    def _slice_expired(self, cpu: CPU) -> bool:
        """Round-robin between equal-priority ranks sharing a CPU."""
        bottom = cpu.stack[0] if cpu.stack else None
        current = bottom.task if bottom is not None else None
        if current is None or not current.is_application:
            return False
        best = self._best_candidate(cpu)
        if best is None or best[0] != current.prio:
            return False
        ran = self.node.engine.now - self._switched_in_at[cpu.index]
        return ran >= self.node.config.timeslice_ns

    def daemon_done(self, cpu: CPU, frame: Frame) -> None:
        """A daemon burst reached the end of its service time."""
        activation = self._active[cpu.index]
        self._active[cpu.index] = None
        if activation is not None and activation.on_done is not None:
            activation.on_done()
        queue = self._queues[cpu.index]
        if queue and queue[0].task is frame.task:
            best = self._best_candidate(cpu)
            if best is not None and best[0] >= frame.task.prio:
                # Next work item belongs to the same daemon and nothing
                # more urgent waits: keep running in the same context, no
                # context switch (kernel work queues batch).
                nxt = queue.pop(0)
                self._active[cpu.index] = nxt
                frame.remaining = nxt.service_ns
                cpu._resume(frame)
                return
        self._push_schedule(cpu, blocking=False)

    def migrate_queued(self, src: int, dst: int) -> bool:
        """Move one queued daemon activation between CPUs (load balancing)."""
        queue = self._queues[src]
        if not queue:
            return False
        activation = queue.pop(-1)
        activation.task.cpu = dst
        activation.task.migrations += 1
        self.migrations += 1
        cpu = self.node.cpus[src]
        cpu.emit_point(
            Ev.SCHED_MIGRATE,
            activation.task.pid,
            encode_migrate(activation.task.pid, dst),
        )
        # Indirect cost: the migrated daemon's burst pays a cache warm-up.
        activation.service_ns += self.node.config.migration_warmup_ns
        self._queues[dst].append(activation)
        self._kick(self.node.cpus[dst])
        return True

    def queue_depth(self, cpu_index: int) -> int:
        return len(self._queues[cpu_index])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _best_candidate(self, cpu: CPU):
        """``(prio, kind, index)`` of the most urgent waiting entity.

        Priority-based (lower value wins), FIFO within a priority; daemon
        activations win ties against rank restores (they arrived through an
        interrupt and Linux wakes kernel threads eagerly).
        """
        best = None
        for i, activation in enumerate(self._queues[cpu.index]):
            prio = activation.task.prio
            if best is None or prio < best[0]:
                best = (prio, "daemon", i)
        for i, task in enumerate(self._runnable[cpu.index]):
            if best is None or task.prio < best[0]:
                best = (task.prio, "rank", i)
        return best

    def _has_better_work(self, cpu: CPU) -> bool:
        best = self._best_candidate(cpu)
        if best is None:
            return False
        bottom = cpu.stack[0] if cpu.stack else None
        current = bottom.task if bottom is not None else None
        if current is None or current.kind == TaskKind.IDLE:
            return True
        # Strictly-better priority preempts; equals wait their turn.
        return best[0] < current.prio

    def _kick(self, cpu: CPU) -> None:
        """Request a reschedule; start it immediately if the CPU is quiescent."""
        cpu.need_resched = True
        top = cpu.top
        if (
            top is not None
            and top.running
            and top.kind in (FrameKind.USER, FrameKind.IDLE, FrameKind.DAEMON)
            and self._has_better_work(cpu)
        ):
            cpu.need_resched = False
            self._push_schedule(cpu, blocking=False)

    def _push_schedule(self, cpu: CPU, blocking: bool) -> None:
        node = self.node
        duration = node.config.models.sched_call.sample(node.rng_for("sched"))

        def tail() -> None:
            self._switch(cpu, blocking)

        frame = Frame(
            FrameKind.KACT,
            event=Ev.SCHED_CALL,
            name="schedule",
            remaining=max(1, duration),
            on_exit=tail,
        )
        cpu.push(frame)

    def _pick_next(self, cpu: CPU) -> Tuple[str, object]:
        best = self._best_candidate(cpu)
        if best is None:
            return ("idle", None)
        _, kind, index = best
        if kind == "daemon":
            return ("daemon", self._queues[cpu.index].pop(index))
        return ("rank", self._runnable[cpu.index].pop(index))

    def _switch(self, cpu: CPU, blocking: bool) -> None:
        """The tail of schedule(): dispose current context, install next."""
        node = self.node
        old = cpu.stack[0]
        prev_task = old.task
        prev_pid = prev_task.pid if prev_task is not None else IDLE_PID

        if blocking and prev_task is not None and prev_task.wake_pending:
            # A wakeup raced with this block: schedule() picks the same
            # task again (the schedule() cost was still paid).
            prev_task.wake_pending = False
            if prev_task.on_scheduled is not None:
                prev_task.on_scheduled()
            return

        # --- dispose the outgoing context --------------------------------
        if prev_task is not None and prev_task.is_application:
            prev_task.saved_frame = old
            prev_task.cpu = None
            if blocking:
                prev_task.state = TaskState.BLOCKED
            else:
                prev_task.state = TaskState.RUNNABLE
                self._runnable[cpu.index].append(prev_task)
                self.preemptions += 1
            cpu.emit_point(
                Ev.TASK_STATE,
                prev_pid,
                encode_task_state(prev_pid, prev_task.state),
            )
        elif prev_task is not None and prev_task.is_daemon:
            prev_task.state = TaskState.BLOCKED
            prev_task.cpu = None
            cpu.emit_point(
                Ev.TASK_STATE,
                prev_pid,
                encode_task_state(prev_pid, TaskState.BLOCKED),
            )

        # --- install the incoming context --------------------------------
        kind, payload = self._pick_next(cpu)
        if kind == "daemon":
            activation = payload  # type: ignore[assignment]
            task = activation.task
            self._active[cpu.index] = activation
            new_frame = Frame(
                FrameKind.DAEMON,
                task=task,
                name=task.name,
                remaining=activation.service_ns,
            )
            task.state = TaskState.RUNNING
            task.cpu = cpu.index
        elif kind == "rank":
            task = payload  # type: ignore[assignment]
            new_frame = task.saved_frame
            if new_frame is None:
                raise RuntimeError(f"runnable rank {task!r} has no saved frame")
            task.saved_frame = None
            task.state = TaskState.RUNNING
            task.cpu = cpu.index
        else:
            task = node.idle_tasks[cpu.index]
            new_frame = Frame(FrameKind.IDLE, task=task, name=task.name)

        cpu.swap_bottom(new_frame)
        self.switches += 1
        self._switched_in_at[cpu.index] = node.engine.now
        next_pid = task.pid
        cpu.emit_point(
            Ev.SCHED_SWITCH, next_pid, encode_switch(prev_pid, next_pid)
        )
        if task.is_application or task.is_daemon:
            cpu.emit_point(
                Ev.TASK_STATE,
                next_pid,
                encode_task_state(next_pid, TaskState.RUNNING),
            )
        if kind == "rank" and task.on_scheduled is not None:
            # The task's frame is installed now; continuations may safely
            # set a new burst and resume it.
            task.on_scheduled()
