"""Per-CPU execution model: a stack of frames.

A CPU always executes the frame at the top of its stack.  The bottom frame is
the *context* — a task's user-mode computation or the idle loop — and kernel
activities (interrupts, exceptions, softirqs, the scheduler, daemon bursts)
push frames on top of it.  Pushing pauses the frame below; popping resumes
it.  This directly produces the nested-event structure the paper's offline
analysis must untangle ("the local timer may raise an interrupt while the
kernel is performing a tasklet").

Trace records are emitted at every frame entry/exit, and the cost of writing
each record is *added to the simulated duration* of the enclosing activity,
so enabling tracing perturbs the execution — which is what the paper's
overhead experiment quantifies.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Callable, List, Optional

from repro.simkernel.engine import Engine, SimEvent
from repro.simkernel.task import IDLE_PID, Task
from repro.tracing.events import Flag, TraceSink, is_paired


class FrameKind(IntEnum):
    IDLE = 0    # the idle loop (open-ended)
    USER = 1    # a task's user-mode compute burst (finite)
    KACT = 2    # a kernel activity with paired ENTRY/EXIT trace records
    DAEMON = 3  # a daemon's service burst (context switched in, finite)


class Frame:
    """One stack entry on a CPU."""

    __slots__ = (
        "kind",
        "event",
        "name",
        "task",
        "arg",
        "remaining",
        "resumed_at",
        "entered_at",
        "completion",
        "running",
        "on_exit",
        "on_pause",
        "on_resume",
    )

    def __init__(
        self,
        kind: FrameKind,
        *,
        event: Optional[int] = None,
        name: str = "",
        task: Optional[Task] = None,
        arg: int = 0,
        remaining: Optional[int] = None,
        on_exit: Optional[Callable[[], None]] = None,
        on_pause: Optional[Callable[[], None]] = None,
        on_resume: Optional[Callable[[], None]] = None,
    ) -> None:
        self.kind = kind
        #: Paired trace event id (``Ev``), or None for frames whose
        #: boundaries are traced by point events (daemon bursts) or not at
        #: all (user/idle).
        self.event = event
        self.name = name
        #: The task this frame belongs to, if any.  Trace records emitted
        #: while this frame is topmost-with-a-task are attributed to it.
        self.task = task
        self.arg = arg
        #: Nanoseconds of execution left; None for open-ended frames (idle).
        self.remaining = remaining
        self.resumed_at = 0
        self.entered_at = 0
        self.completion: Optional[SimEvent] = None
        self.running = False
        self.on_exit = on_exit
        self.on_pause = on_pause
        self.on_resume = on_resume

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Frame {self.kind.name} {self.name!r} remaining={self.remaining} "
            f"running={self.running}>"
        )


class CPU:
    """One processor of the simulated node."""

    def __init__(self, index: int, engine: Engine, kernel: "KernelHooks") -> None:
        self.index = index
        self.engine = engine
        self.kernel = kernel
        self.stack: List[Frame] = []
        #: Set when the scheduler wants to run something as soon as the
        #: kernel frames drain back to the context frame.
        self.need_resched = False
        #: Total nanoseconds this CPU spent above the context frame (all
        #: kernel activity + daemon bursts); bookkeeping for quick stats.
        self.kernel_ns = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bottom(self) -> Optional[Frame]:
        return self.stack[0] if self.stack else None

    @property
    def top(self) -> Optional[Frame]:
        return self.stack[-1] if self.stack else None

    def context_task(self) -> Optional[Task]:
        """The task trace records are attributed to (topmost frame with one)."""
        for frame in reversed(self.stack):
            if frame.task is not None:
                return frame.task
        return None

    def context_pid(self) -> int:
        task = self.context_task()
        return task.pid if task is not None else IDLE_PID

    def in_kernel(self) -> bool:
        """True when any frame above the context frame is active."""
        return len(self.stack) > 1

    def kact_depth(self) -> int:
        return sum(1 for f in self.stack if f.kind == FrameKind.KACT)

    # ------------------------------------------------------------------
    # Trace emission
    # ------------------------------------------------------------------
    def _sink(self) -> TraceSink:
        return self.kernel.sink

    def emit_point(self, event: int, pid: int, arg: int) -> None:
        """Emit a point record; charge its cost to the running frame."""
        sink = self._sink()
        sink.emit(self.engine.now, event, self.index, Flag.POINT, pid, arg)
        cost = sink.cost_ns(event)
        if cost:
            top = self.top
            if top is not None and top.running and top.remaining is not None:
                self._extend_top(cost)

    def _extend_top(self, extra_ns: int) -> None:
        # While a frame runs, ``remaining`` stays fixed and its completion is
        # scheduled at resumed_at + remaining, so extending is a reschedule.
        top = self.stack[-1]
        if top.completion is not None:
            top.completion.cancel()
        top.remaining += extra_ns  # type: ignore[operator]
        top.completion = self.engine.schedule(
            top.resumed_at + top.remaining, self._make_completion(top)
        )

    # ------------------------------------------------------------------
    # Frame stack operations
    # ------------------------------------------------------------------
    def push(self, frame: Frame) -> None:
        """Push a frame; pauses whatever was running."""
        now = self.engine.now
        top = self.top
        if top is not None and top.running:
            self._pause(top)
        sink = self._sink()
        if frame.event is not None and is_paired(frame.event):
            # Entry + exit records each cost one write; fold both into the
            # activity's duration up front.
            if frame.remaining is None:
                raise ValueError("paired kernel activities must be finite")
            frame.remaining += 2 * sink.cost_ns(frame.event)
        self.stack.append(frame)
        frame.entered_at = now
        if frame.event is not None and is_paired(frame.event):
            sink.emit(now, frame.event, self.index, Flag.ENTRY, self.context_pid(), frame.arg)
        self._resume(frame)

    def _pause(self, frame: Frame) -> None:
        now = self.engine.now
        if frame.completion is not None:
            frame.completion.cancel()
            frame.completion = None
        ran = now - frame.resumed_at
        if frame.remaining is not None:
            frame.remaining -= ran
            if frame.remaining < 0:
                frame.remaining = 0
        self._account(frame, ran)
        frame.running = False
        if frame.on_pause is not None:
            frame.on_pause()

    def _resume(self, frame: Frame) -> None:
        now = self.engine.now
        frame.resumed_at = now
        frame.running = True
        if frame.remaining is not None:
            frame.completion = self.engine.schedule(
                now + frame.remaining, self._make_completion(frame)
            )
        if frame.on_resume is not None:
            frame.on_resume()

    def _account(self, frame: Frame, ran_ns: int) -> None:
        """Book actual run time (excludes paused time) for stats."""
        if ran_ns <= 0:
            return
        if frame.kind in (FrameKind.KACT, FrameKind.DAEMON):
            self.kernel_ns += ran_ns
        if frame.task is not None:
            frame.task.total_cpu_ns += ran_ns

    def _make_completion(self, frame: Frame) -> Callable[[], None]:
        def complete() -> None:
            self._complete(frame)

        return complete

    def _complete(self, frame: Frame) -> None:
        if self.top is not frame:
            raise RuntimeError(
                f"cpu{self.index}: completion fired for non-top frame {frame!r}"
            )
        now = self.engine.now
        self._account(frame, now - frame.resumed_at)
        frame.running = False
        frame.completion = None
        frame.remaining = 0
        if frame.kind in (FrameKind.USER, FrameKind.DAEMON):
            # Context frames are not popped on completion: reaching the end
            # of a compute burst / daemon service is a *program point* — the
            # owner decides what happens next (continue, syscall, block,
            # context switch).
            self.kernel.context_done(self, frame)
            return
        if frame.event is not None and is_paired(frame.event):
            # Exit record is attributed to the same context as the entry.
            self._sink().emit(
                now, frame.event, self.index, Flag.EXIT, self.context_pid(), frame.arg
            )
        self.stack.pop()
        depth_before = len(self.stack)
        if frame.on_exit is not None:
            frame.on_exit()
        if len(self.stack) > depth_before:
            # on_exit pushed follow-on work (softirq, scheduler chain, ...);
            # it is already running.
            return
        self._after_drain()

    def _after_drain(self) -> None:
        """Resume the new top frame, giving the scheduler a shot first."""
        top = self.top
        if top is None:
            self.kernel.cpu_went_empty(self)
            return
        if not top.running:
            if top.kind in (FrameKind.USER, FrameKind.IDLE) and self.need_resched:
                depth_before = len(self.stack)
                self.kernel.resched(self)
                if len(self.stack) > depth_before or self.top is not top:
                    return
            self._resume(top)

    # ------------------------------------------------------------------
    # Context-frame manipulation (used by the scheduler)
    # ------------------------------------------------------------------
    def swap_bottom(self, new_frame: Frame) -> Frame:
        """Replace the context frame (a real context switch).

        Only legal while the context frame is not running (i.e. from inside a
        kernel frame's ``on_exit`` — the tail of ``schedule()``).
        """
        if not self.stack:
            raise RuntimeError("no context frame to swap")
        old = self.stack[0]
        if old.running:
            raise RuntimeError("cannot swap a running context frame")
        self.stack[0] = new_frame
        return old

    def set_initial_context(self, frame: Frame) -> None:
        """Install the very first context frame on an empty CPU."""
        if self.stack:
            raise RuntimeError("CPU already has a context")
        self.stack.append(frame)
        frame.entered_at = self.engine.now
        self._resume(frame)


class KernelHooks:
    """What a CPU needs from the surrounding kernel (implemented by Node)."""

    #: Current trace sink; swapped when a tracer attaches.
    sink: TraceSink

    def resched(self, cpu: CPU) -> None:
        """Called when the CPU drained to its context frame with
        :attr:`CPU.need_resched` set.  May push scheduler frames."""
        raise NotImplementedError

    def context_done(self, cpu: CPU, frame: Frame) -> None:
        """A context frame (user burst / daemon service) reached its end."""
        raise NotImplementedError

    def cpu_went_empty(self, cpu: CPU) -> None:
        """Called if a CPU ends up with an empty stack (normally never)."""
        raise NotImplementedError
