"""Paraver trace export (and a parser for round-trip tests).

The paper's second LTTng extension is "an external LTTng module that
generates execution traces suitable for Paraver" — the BSC visualizer used
for all the execution-trace figures (2, 5, 7).  This module writes the
classic three-file Paraver bundle:

* ``.prv``  — the trace: state records (``1:...``) showing what each thread
  was doing and event records (``2:...``) marking activity boundaries;
* ``.pcf``  — the config: names and colours for states and event types;
* ``.row``  — object labels (CPU and thread names).

Mapping: each traced task is one Paraver application task (thread 1); state
values encode the activity category (white/running = useful computation, as
in the paper's figures); punctual events carry the precise kernel event id.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.core.model import (
    Activity,
    ActivityTable,
    CATEGORY_ORDER,
    NoiseCategory,
    TraceMeta,
)
from repro.tracing.events import EVENT_NAMES

#: Paraver state values (STATES section of the .pcf).
STATE_RUNNING = 1          # useful user-mode computation (white in Fig. 2)
STATE_BLOCKED = 9          # waiting (comm/I-O)
STATE_READY = 11           # runnable but displaced (waiting for the CPU)
_CATEGORY_STATE = {
    NoiseCategory.PERIODIC: 20,
    NoiseCategory.PAGE_FAULT: 21,
    NoiseCategory.SCHEDULING: 22,
    NoiseCategory.PREEMPTION: 23,
    NoiseCategory.IO: 24,
    NoiseCategory.SERVICE: 25,
    NoiseCategory.TRACER: 26,
    NoiseCategory.OTHER: 27,
}

#: Paraver state per ActivityTable category code.
_STATE_OF_CODE = np.array(
    [_CATEGORY_STATE.get(c, STATE_RUNNING) for c in CATEGORY_ORDER],
    dtype=np.int32,
)

#: Paraver event type for kernel-activity boundaries.
EVENT_TYPE_KERNEL = 90000001


@dataclass(frozen=True)
class PrvRecord:
    """One parsed .prv record (state or event)."""

    kind: int          # 1 = state, 2 = event
    cpu: int           # 1-based
    task: int          # 1-based
    begin: int
    end: int           # == begin for events
    value: int         # state value, or event value
    etype: int = 0     # event type (events only)


class ParaverWriter:
    """Builds the .prv/.pcf/.row bundle from classified activities."""

    def __init__(
        self,
        meta: TraceMeta,
        ncpus: int,
        end_ts: int,
        app_name: str = "lttng-noise",
    ) -> None:
        self.meta = meta
        self.ncpus = ncpus
        self.end_ts = end_ts
        self.app_name = app_name
        # Stable task numbering: application ranks first, then daemons.
        pids = sorted(meta.tasks)
        self._task_no: Dict[int, int] = {
            pid: i + 1 for i, pid in enumerate(pids)
        }

    # ------------------------------------------------------------------
    def prv_lines(
        self, activities: Union[ActivityTable, Sequence[Activity]]
    ) -> List[str]:
        """Generate .prv body lines for the given activities.

        Accepts an :class:`ActivityTable` (sorted and mapped column-wise)
        or a plain activity sequence.
        """
        if isinstance(activities, ActivityTable):
            d = activities.data
            order = np.lexsort((d["cpu"], d["start"]))
            d = d[order]
            states = _STATE_OF_CODE[d["category"]].tolist()
            columns = zip(
                d["pid"].tolist(),
                (d["cpu"] + 1).tolist(),
                d["start"].tolist(),
                d["end"].tolist(),
                d["event"].tolist(),
                states,
            )
        else:
            ordered = sorted(activities, key=lambda a: (a.start, a.cpu))
            columns = (
                (
                    a.pid,
                    a.cpu + 1,
                    a.start,
                    a.end,
                    a.event,
                    _CATEGORY_STATE.get(a.category, STATE_RUNNING),
                )
                for a in ordered
            )
        lines: List[str] = []
        task_no_of = self._task_no
        for pid, cpu, start, end, event, state in columns:
            task_no = task_no_of.get(pid, 1)
            lines.append(f"1:{cpu}:1:{task_no}:1:{start}:{end}:{state}")
            lines.append(
                f"2:{cpu}:1:{task_no}:1:{start}:{EVENT_TYPE_KERNEL}:{event}"
            )
            lines.append(
                f"2:{cpu}:1:{task_no}:1:{end}:{EVENT_TYPE_KERNEL}:0"
            )
        return lines

    def state_lines(self, timeline) -> List[str]:
        """Task-state records from a :class:`repro.core.timeline.TaskTimeline`.

        Renders what Paraver's state view shows between kernel activities:
        running (white), ready-but-displaced, and blocked intervals.
        """
        from repro.simkernel.task import TaskState

        value_of = {
            TaskState.RUNNING: STATE_RUNNING,
            TaskState.RUNNABLE: STATE_READY,
            TaskState.BLOCKED: STATE_BLOCKED,
        }
        lines: List[str] = []
        for pid in timeline.pids():
            task_no = self._task_no.get(pid, 1)
            for interval in timeline.intervals(pid):
                value = value_of.get(interval.state)
                if value is None:
                    continue
                lines.append(
                    f"1:1:1:{task_no}:1:{interval.start}:{interval.end}:{value}"
                )
        lines.sort(key=lambda l: int(l.split(":")[5]))
        return lines

    def header(self) -> str:
        ntasks = max(1, len(self._task_no))
        node_list = ",".join("1" for _ in range(ntasks))
        return (
            f"#Paraver (01/01/2011 at 00:00):{self.end_ts}_ns:"
            f"1({self.ncpus}):1:{ntasks}({node_list})"
        )

    def write_prv(
        self,
        path: str,
        activities: Union[ActivityTable, Sequence[Activity]],
        timeline=None,
    ) -> None:
        with open(path, "w") as fp:
            fp.write(self.header() + "\n")
            if timeline is not None:
                for line in self.state_lines(timeline):
                    fp.write(line + "\n")
            for line in self.prv_lines(activities):
                fp.write(line + "\n")

    # ------------------------------------------------------------------
    def pcf_text(self) -> str:
        lines = [
            "DEFAULT_OPTIONS",
            "",
            "LEVEL               THREAD",
            "UNITS               NANOSEC",
            "",
            "STATES",
            f"{STATE_RUNNING}    Running",
            f"{STATE_BLOCKED}    Blocked",
            f"{STATE_READY}    Ready (displaced)",
        ]
        for category, value in _CATEGORY_STATE.items():
            lines.append(f"{value}    OS noise: {category.value}")
        lines += [
            "",
            "STATES_COLOR",
            f"{STATE_RUNNING}    {{255,255,255}}",   # white, as in the paper
            f"{_CATEGORY_STATE[NoiseCategory.PERIODIC]}    {{0,0,0}}",      # black
            f"{_CATEGORY_STATE[NoiseCategory.PAGE_FAULT]}    {{255,0,0}}",  # red
            f"{_CATEGORY_STATE[NoiseCategory.SCHEDULING]}    {{255,160,0}}",# orange
            f"{_CATEGORY_STATE[NoiseCategory.PREEMPTION]}    {{0,160,0}}",  # green
            f"{_CATEGORY_STATE[NoiseCategory.IO]}    {{0,0,255}}",          # blue
            "",
            "EVENT_TYPE",
            f"9    {EVENT_TYPE_KERNEL}    Kernel activity",
            "VALUES",
            "0      (end)",
        ]
        for event, name in sorted(EVENT_NAMES.items()):
            lines.append(f"{int(event)}      {name}")
        from repro.core.model import PREEMPT_EVENT, TRACER_PREEMPT_EVENT

        lines.append(f"{PREEMPT_EVENT}      preemption")
        lines.append(f"{TRACER_PREEMPT_EVENT}      tracer preemption")
        return "\n".join(lines) + "\n"

    def row_text(self) -> str:
        lines = [f"LEVEL CPU SIZE {self.ncpus}"]
        for i in range(self.ncpus):
            lines.append(f"cpu{i}")
        tasks = sorted(self._task_no.items(), key=lambda kv: kv[1])
        lines.append(f"LEVEL THREAD SIZE {len(tasks)}")
        for pid, _ in tasks:
            lines.append(f"{self.meta.name_of(pid)} ({pid})")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    def export(
        self,
        basename: str,
        activities: Union[ActivityTable, Sequence[Activity]],
        timeline=None,
    ) -> Tuple[str, str, str]:
        """Write the full bundle; returns the three file paths."""
        prv = basename + ".prv"
        pcf = basename + ".pcf"
        row = basename + ".row"
        self.write_prv(prv, activities, timeline=timeline)
        with open(pcf, "w") as fp:
            fp.write(self.pcf_text())
        with open(row, "w") as fp:
            fp.write(self.row_text())
        return prv, pcf, row


# ----------------------------------------------------------------------
# Parsing (round-trip validation)
# ----------------------------------------------------------------------

def parse_prv(path_or_text: str) -> Tuple[str, List[PrvRecord]]:
    """Parse a .prv file (or its text); returns (header, records)."""
    if os.path.exists(path_or_text):
        with open(path_or_text) as fp:
            text = fp.read()
    else:
        text = path_or_text
    lines = text.strip().splitlines()
    if not lines or not lines[0].startswith("#Paraver"):
        raise ValueError("not a Paraver trace: missing #Paraver header")
    header = lines[0]
    records: List[PrvRecord] = []
    for line in lines[1:]:
        if not line.strip():
            continue
        parts = line.split(":")
        kind = int(parts[0])
        if kind == 1:
            if len(parts) != 8:
                raise ValueError(f"malformed state record: {line!r}")
            records.append(
                PrvRecord(
                    kind=1,
                    cpu=int(parts[1]),
                    task=int(parts[3]),
                    begin=int(parts[5]),
                    end=int(parts[6]),
                    value=int(parts[7]),
                )
            )
        elif kind == 2:
            if len(parts) < 8 or (len(parts) - 6) % 2 != 0:
                raise ValueError(f"malformed event record: {line!r}")
            t = int(parts[5])
            for i in range(6, len(parts), 2):
                records.append(
                    PrvRecord(
                        kind=2,
                        cpu=int(parts[1]),
                        task=int(parts[3]),
                        begin=t,
                        end=t,
                        value=int(parts[i + 1]),
                        etype=int(parts[i]),
                    )
                )
        else:
            raise ValueError(f"unsupported record kind {kind} in {line!r}")
    return header, records
