"""Chrome trace-event (Perfetto / chrome://tracing) export.

The paper's offline module targets Paraver because that is BSC's tool; it
notes "other formats can be generated relatively easily by performing a
different offline transformation of the original trace file".  This is that
other transformation: the Trace Event Format consumed by chrome://tracing,
Perfetto UI and speedscope.

Mapping:

* each CPU is a Chrome *process* (``pid`` = cpu index), so the timeline
  groups kernel activity per core, like the paper's figures;
* within a CPU, track 0 carries the kernel activities as complete ("X")
  events — nesting renders as stacked slices, exactly our frame stack;
* ``sched_switch`` / markers become instant ("i") events;
* per-task state intervals (optional) go to a separate "tasks" process.

Timestamps are microseconds (floats), per the format.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Union

from repro.core.model import (
    Activity,
    ActivityTable,
    CATEGORY_ORDER,
    NoiseCategory,
    TraceMeta,
)

#: Category -> Chrome color name (close to the paper's palette).
_COLOR = {
    NoiseCategory.PERIODIC: "black",
    NoiseCategory.PAGE_FAULT: "terrible",       # red
    NoiseCategory.SCHEDULING: "bad",            # orange
    NoiseCategory.PREEMPTION: "good",           # green
    NoiseCategory.IO: "thread_state_runnable",  # blue
    NoiseCategory.SERVICE: "grey",
    NoiseCategory.TRACER: "grey",
    NoiseCategory.OTHER: "yellow",
}


def activities_to_events(
    activities: Union[ActivityTable, Sequence[Activity]],
    meta: Optional[TraceMeta] = None,
) -> List[dict]:
    """Convert activities (table or sequence) into Trace Event Format dicts."""
    meta = meta if meta is not None else TraceMeta()
    events: List[dict] = []
    if isinstance(activities, ActivityTable):
        d = activities.data
        names = activities.names().tolist()
        context_of: Dict[int, str] = {}
        rows = zip(
            names,
            d["category"].tolist(),
            d["start"].tolist(),
            d["total_ns"].tolist(),
            d["cpu"].tolist(),
            d["self_ns"].tolist(),
            d["pid"].tolist(),
            d["is_noise"].tolist(),
            d["depth"].tolist(),
        )
        for name, code, start, total, cpu, self_ns, pid, noise, depth in rows:
            category = CATEGORY_ORDER[code]
            context = context_of.get(pid)
            if context is None:
                context = context_of[pid] = meta.name_of(pid)
            events.append(
                {
                    "name": name,
                    "cat": category.value,
                    "ph": "X",
                    "ts": start / 1000.0,
                    "dur": total / 1000.0,
                    "pid": cpu,
                    "tid": 0,
                    "cname": _COLOR.get(category, "grey"),
                    "args": {
                        "self_ns": self_ns,
                        "context": context,
                        "noise": noise,
                        "depth": depth,
                    },
                }
            )
        return events
    for act in activities:
        events.append(
            {
                "name": act.name,
                "cat": act.category.value,
                "ph": "X",
                "ts": act.start / 1000.0,
                "dur": act.total_ns / 1000.0,
                "pid": act.cpu,
                "tid": 0,
                "cname": _COLOR.get(act.category, "grey"),
                "args": {
                    "self_ns": act.self_ns,
                    "context": meta.name_of(act.pid),
                    "noise": act.is_noise,
                    "depth": act.depth,
                },
            }
        )
    return events


def timeline_to_events(timeline, meta: Optional[TraceMeta] = None) -> List[dict]:
    """Per-task state intervals as slices in a synthetic 'tasks' process."""
    from repro.simkernel.task import TaskState

    meta = meta if meta is not None else TraceMeta()
    state_names = {
        TaskState.RUNNING: "running",
        TaskState.RUNNABLE: "ready",
        TaskState.BLOCKED: "blocked",
    }
    events: List[dict] = []
    for pid in timeline.pids():
        for interval in timeline.intervals(pid):
            name = state_names.get(interval.state)
            if name is None:
                continue
            events.append(
                {
                    "name": name,
                    "cat": "task-state",
                    "ph": "X",
                    "ts": interval.start / 1000.0,
                    "dur": interval.duration_ns / 1000.0,
                    "pid": 1_000_000,  # synthetic "tasks" process
                    "tid": pid,
                }
            )
    return events


def export_chrome_trace(
    path: str,
    activities: Union[ActivityTable, Sequence[Activity]],
    meta: Optional[TraceMeta] = None,
    timeline=None,
    ncpus: Optional[int] = None,
) -> int:
    """Write a .json trace loadable in chrome://tracing / Perfetto.

    Returns the number of events written.
    """
    meta = meta if meta is not None else TraceMeta()
    events = activities_to_events(activities, meta)
    if timeline is not None:
        events += timeline_to_events(timeline, meta)
    # Process/thread naming metadata.
    if ncpus is not None:
        cpus = range(ncpus)
    elif isinstance(activities, ActivityTable):
        cpus = sorted(set(activities.data["cpu"].tolist()))
    else:
        cpus = sorted({a.cpu for a in activities})
    for cpu in cpus:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": int(cpu),
                "args": {"name": f"cpu{cpu}"},
            }
        )
    if timeline is not None:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1_000_000,
                "args": {"name": "tasks"},
            }
        )
        for pid in timeline.pids():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1_000_000,
                    "tid": pid,
                    "args": {"name": meta.name_of(pid)},
                }
            )
    payload = {"traceEvents": events, "displayTimeUnit": "ns"}
    with open(path, "w") as fp:
        json.dump(payload, fp)
    return len(events)


def read_chrome_trace(path: str) -> List[dict]:
    """Load back an exported trace (validation aid)."""
    with open(path) as fp:
        data = json.load(fp)
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError("not a Chrome trace-event file")
    return data["traceEvents"]
