"""Trace exporters: Paraver, Chrome trace-event, Matlab-style numeric data."""

from repro.io.chrometrace import (
    activities_to_events,
    export_chrome_trace,
    read_chrome_trace,
)
from repro.io.matlabfmt import (
    activities_to_csv,
    activity_arrays,
    export_npz,
    read_activities_csv,
)
from repro.io.paraver import ParaverWriter, PrvRecord, parse_prv

__all__ = [
    "activities_to_events",
    "export_chrome_trace",
    "read_chrome_trace",
    "activities_to_csv",
    "activity_arrays",
    "export_npz",
    "read_activities_csv",
    "ParaverWriter",
    "PrvRecord",
    "parse_prv",
]
