"""The paper's "Matlab module" equivalent: numeric data export.

LTTng-noise's second output path is "a data format that can be used as input
to Matlab", from which the paper derives the synthetic OS noise chart and
the histograms.  Here the same role is played by:

* :func:`activities_to_csv` — flat per-activity table (one row per
  reconstructed kernel activity) loadable anywhere;
* :func:`export_npz` — numpy archive with the activity columns, the
  synthetic chart series and per-event duration arrays, for programmatic
  post-processing (the library's own chart/histogram code consumes the
  in-memory form; this is the at-rest form).
"""

from __future__ import annotations

import csv
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.analysis import NoiseAnalysis
from repro.core.chart import SyntheticNoiseChart
from repro.core.model import Activity, ActivityTable, CATEGORY_ORDER

CSV_COLUMNS = (
    "start",
    "end",
    "cpu",
    "pid",
    "event",
    "name",
    "category",
    "total_ns",
    "self_ns",
    "depth",
    "is_noise",
    "truncated",
)


def _csv_rows(activities: Union[ActivityTable, Sequence[Activity]]):
    if isinstance(activities, ActivityTable):
        d = activities.data
        names = activities.names().tolist()
        cat_values = [CATEGORY_ORDER[c].value for c in d["category"].tolist()]
        return zip(
            d["start"].tolist(),
            d["end"].tolist(),
            d["cpu"].tolist(),
            d["pid"].tolist(),
            d["event"].tolist(),
            names,
            cat_values,
            d["total_ns"].tolist(),
            d["self_ns"].tolist(),
            d["depth"].tolist(),
            (d["is_noise"].astype(np.int8)).tolist(),
            (d["truncated"].astype(np.int8)).tolist(),
        )
    return (
        (
            act.start,
            act.end,
            act.cpu,
            act.pid,
            act.event,
            act.name,
            act.category.value,
            act.total_ns,
            act.self_ns,
            act.depth,
            int(act.is_noise),
            int(act.truncated),
        )
        for act in activities
    )


def activities_to_csv(
    path: str, activities: Union[ActivityTable, Sequence[Activity]]
) -> int:
    """Write one CSV row per activity; returns the row count."""
    with open(path, "w", newline="") as fp:
        writer = csv.writer(fp)
        writer.writerow(CSV_COLUMNS)
        n = 0
        for row in _csv_rows(activities):
            writer.writerow(row)
            n += 1
    return n


def read_activities_csv(path: str) -> List[dict]:
    """Read back an activities CSV (validation/testing aid)."""
    with open(path, newline="") as fp:
        reader = csv.DictReader(fp)
        rows = []
        for row in reader:
            rows.append(
                {
                    "start": int(row["start"]),
                    "end": int(row["end"]),
                    "cpu": int(row["cpu"]),
                    "pid": int(row["pid"]),
                    "event": int(row["event"]),
                    "name": row["name"],
                    "category": row["category"],
                    "total_ns": int(row["total_ns"]),
                    "self_ns": int(row["self_ns"]),
                    "depth": int(row["depth"]),
                    "is_noise": bool(int(row["is_noise"])),
                    "truncated": bool(int(row["truncated"])),
                }
            )
        return rows


def activity_arrays(
    activities: Union[ActivityTable, Sequence[Activity]]
) -> Dict[str, np.ndarray]:
    """Columnar numpy view of an activity list or table."""
    if isinstance(activities, ActivityTable):
        d = activities.data
        return {
            "start": d["start"].astype(np.int64),
            "end": d["end"].astype(np.int64),
            "cpu": d["cpu"].astype(np.int16),
            "pid": d["pid"].astype(np.int32),
            "event": d["event"].astype(np.int32),
            "total_ns": d["total_ns"].astype(np.int64),
            "self_ns": d["self_ns"].astype(np.int64),
            "depth": d["depth"].astype(np.int16),
            "is_noise": d["is_noise"].copy(),
        }
    n = len(activities)
    out = {
        "start": np.zeros(n, dtype=np.int64),
        "end": np.zeros(n, dtype=np.int64),
        "cpu": np.zeros(n, dtype=np.int16),
        "pid": np.zeros(n, dtype=np.int32),
        "event": np.zeros(n, dtype=np.int32),
        "total_ns": np.zeros(n, dtype=np.int64),
        "self_ns": np.zeros(n, dtype=np.int64),
        "depth": np.zeros(n, dtype=np.int16),
        "is_noise": np.zeros(n, dtype=bool),
    }
    for i, act in enumerate(activities):
        out["start"][i] = act.start
        out["end"][i] = act.end
        out["cpu"][i] = act.cpu
        out["pid"][i] = act.pid
        out["event"][i] = act.event
        out["total_ns"][i] = act.total_ns
        out["self_ns"][i] = act.self_ns
        out["depth"][i] = act.depth
        out["is_noise"][i] = act.is_noise
    return out


def export_npz(
    path: str,
    analysis: NoiseAnalysis,
    chart_cpu: Optional[int] = None,
    events_for_histograms: Sequence[str] = (
        "page_fault",
        "run_timer_softirq",
        "run_rebalance_domains",
    ),
) -> None:
    """Write the full numeric bundle: activities + chart + histogram data."""
    payload = activity_arrays(analysis.table)
    chart = SyntheticNoiseChart(analysis, cpu=chart_cpu)
    times, noise = chart.series()
    payload["chart_times"] = times
    payload["chart_noise_ns"] = noise
    for name in events_for_histograms:
        payload[f"durations_{name}"] = analysis.durations(name)
    payload["span_ns"] = np.array([analysis.span_ns])
    payload["ncpus"] = np.array([analysis.ncpus])
    np.savez_compressed(path, **payload)
