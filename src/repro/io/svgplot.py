"""Dependency-free SVG charts for regenerating the paper's figures.

matplotlib is not a dependency of this library; these small generators
cover exactly the figure shapes the paper uses:

* :func:`spike_chart` — Figures 1a/1b: per-quantum noise spikes over time;
* :func:`histogram_chart` — Figures 4/6/8: duration distributions;
* :func:`stacked_bars` — Figure 3: the five-category breakdown per app;
* :func:`trace_strip` — Figures 2/5/7: per-CPU activity strips.

The output is plain SVG 1.1, viewable in any browser.  Layout is simple and
deterministic; no text measurement, so long labels may overflow — keep them
short, as the paper's are.
"""

from __future__ import annotations

import html
from typing import List, Mapping, Optional, Sequence

#: Category colours, matching the paper's figures and our Paraver export.
CATEGORY_COLORS = {
    "periodic": "#000000",
    "page fault": "#d62728",
    "scheduling": "#ff7f0e",
    "preemption": "#2ca02c",
    "io": "#1f77b4",
    "service": "#aaaaaa",
    "tracer": "#cccccc",
    "other": "#bcbd22",
}

_MARGIN = 50


def _svg(width: int, height: int, body: List[str], title: str) -> str:
    head = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
        f'<rect width="{width}" height="{height}" fill="white"/>'
        f'<text x="{width / 2}" y="18" text-anchor="middle" '
        f'font-family="sans-serif" font-size="14">{html.escape(title)}</text>'
    )
    return head + "".join(body) + "</svg>"


def _axes(width: int, height: int) -> str:
    x0, y0 = _MARGIN, height - _MARGIN
    x1, y1 = width - 20, 30
    return (
        f'<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="black"/>'
        f'<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="black"/>'
    )


def _label(x: float, y: float, text: str, anchor: str = "middle", size=10) -> str:
    return (
        f'<text x="{x}" y="{y}" text-anchor="{anchor}" '
        f'font-family="sans-serif" font-size="{size}">{html.escape(text)}</text>'
    )


def spike_chart(
    times: Sequence[float],
    values: Sequence[float],
    title: str,
    x_label: str = "time",
    y_label: str = "noise (ns)",
    width: int = 900,
    height: int = 300,
    color: str = "#1f77b4",
) -> str:
    """Vertical-spike series — the FTQ / synthetic-noise-chart look."""
    if len(times) != len(values):
        raise ValueError("times and values must align")
    body = [_axes(width, height)]
    if times:
        t_min, t_max = min(times), max(times)
        v_max = max(max(values), 1)
        span_x = (t_max - t_min) or 1
        plot_w = width - 20 - _MARGIN
        plot_h = height - _MARGIN - 30
        y0 = height - _MARGIN
        for t, v in zip(times, values):
            x = _MARGIN + (t - t_min) / span_x * plot_w
            y = y0 - (v / v_max) * plot_h
            body.append(
                f'<line x1="{x:.1f}" y1="{y0}" x2="{x:.1f}" y2="{y:.1f}" '
                f'stroke="{color}" stroke-width="1"/>'
            )
        body.append(_label(_MARGIN - 5, 35, f"{v_max:.0f}", anchor="end"))
    body.append(_label(width / 2, height - 10, x_label))
    body.append(_label(15, height / 2, y_label, size=10))
    return _svg(width, height, body, title)


def histogram_chart(
    edges: Sequence[float],
    counts: Sequence[int],
    title: str,
    x_label: str = "duration (ns)",
    width: int = 700,
    height: int = 300,
    color: str = "#d62728",
) -> str:
    """Bar histogram — the Figure 4/6/8 look."""
    if len(edges) != len(counts) + 1:
        raise ValueError("need len(edges) == len(counts) + 1")
    body = [_axes(width, height)]
    if counts and max(counts) > 0:
        c_max = max(counts)
        lo, hi = edges[0], edges[-1]
        span = (hi - lo) or 1
        plot_w = width - 20 - _MARGIN
        plot_h = height - _MARGIN - 30
        y0 = height - _MARGIN
        for i, count in enumerate(counts):
            x = _MARGIN + (edges[i] - lo) / span * plot_w
            w = max(1.0, (edges[i + 1] - edges[i]) / span * plot_w - 1)
            h = (count / c_max) * plot_h
            body.append(
                f'<rect x="{x:.1f}" y="{y0 - h:.1f}" width="{w:.1f}" '
                f'height="{h:.1f}" fill="{color}"/>'
            )
        body.append(_label(_MARGIN, height - 32, f"{lo:.0f}", anchor="start"))
        body.append(_label(width - 20, height - 32, f"{hi:.0f}", anchor="end"))
        body.append(_label(_MARGIN - 5, 35, str(c_max), anchor="end"))
    body.append(_label(width / 2, height - 10, x_label))
    return _svg(width, height, body, title)


def stacked_bars(
    rows: Mapping[str, Mapping[str, float]],
    title: str,
    width: int = 700,
    height: int = 360,
    categories: Optional[Sequence[str]] = None,
) -> str:
    """Stacked 100 % bars — the Figure 3 breakdown look.

    ``rows``: app name -> {category name -> fraction}.
    """
    if not rows:
        raise ValueError("no rows")
    if categories is None:
        categories = list(CATEGORY_COLORS)
    body = [_axes(width, height)]
    plot_w = width - 20 - _MARGIN
    plot_h = height - _MARGIN - 30
    y0 = height - _MARGIN
    n = len(rows)
    bar_w = plot_w / n * 0.6
    for i, (name, fractions) in enumerate(rows.items()):
        x = _MARGIN + plot_w * (i + 0.2) / n
        y = y0
        for category in categories:
            fraction = fractions.get(category, 0.0)
            if fraction <= 0:
                continue
            h = fraction * plot_h
            color = CATEGORY_COLORS.get(category, "#999999")
            body.append(
                f'<rect x="{x:.1f}" y="{y - h:.1f}" width="{bar_w:.1f}" '
                f'height="{h:.1f}" fill="{color}"/>'
            )
            y -= h
        body.append(_label(x + bar_w / 2, y0 + 14, name))
    # Legend.
    lx = _MARGIN
    for category in categories:
        color = CATEGORY_COLORS.get(category, "#999999")
        body.append(
            f'<rect x="{lx}" y="{height - 24}" width="10" height="10" '
            f'fill="{color}"/>'
        )
        body.append(_label(lx + 14, height - 15, category, anchor="start", size=9))
        lx += 14 + 7 * len(category) + 14
    return _svg(width, height, body, title)


def trace_strip(
    activities: Sequence,
    t0: int,
    t1: int,
    ncpus: int,
    title: str,
    width: int = 900,
    row_height: int = 26,
) -> str:
    """Per-CPU activity strips — the execution-trace figures (2, 5, 7)."""
    if t1 <= t0:
        raise ValueError("need t1 > t0")
    height = 40 + ncpus * row_height + 30
    body: List[str] = []
    span = t1 - t0
    plot_w = width - 20 - _MARGIN
    for cpu in range(ncpus):
        y = 30 + cpu * row_height
        body.append(
            f'<rect x="{_MARGIN}" y="{y}" width="{plot_w}" '
            f'height="{row_height - 6}" fill="#f7f7f7" stroke="#dddddd"/>'
        )
        body.append(_label(_MARGIN - 6, y + row_height / 2, f"cpu{cpu}", anchor="end"))
    for act in activities:
        if act.end <= t0 or act.start >= t1 or act.cpu >= ncpus:
            continue
        x = _MARGIN + max(0, (act.start - t0)) / span * plot_w
        w = max(0.6, (min(act.end, t1) - max(act.start, t0)) / span * plot_w)
        y = 30 + act.cpu * row_height
        color = CATEGORY_COLORS.get(act.category.value, "#999999")
        body.append(
            f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" '
            f'height="{row_height - 6}" fill="{color}">'
            f"<title>{html.escape(act.name)}: {act.self_ns} ns</title></rect>"
        )
    return _svg(width, height, body, title)


def write_svg(path: str, svg: str) -> None:
    with open(path, "w") as fp:
        fp.write(svg)
