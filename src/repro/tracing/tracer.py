"""The lttng-noise tracer: kernel-side recording.

Attaching a :class:`Tracer` to a node does three things, mirroring the
paper's Section III-A:

1. installs a :class:`~repro.tracing.events.TraceSink` that writes every
   tracepoint record into per-CPU ring buffers;
2. sets the per-record instrumentation cost, which the simulated kernel adds
   to each activity's duration — enabling tracing therefore slows the node
   down by a measurable amount (the paper reports 0.28 % on average);
3. starts the collection daemon that periodically drains completed
   sub-buffers (its own bursts are visible in the trace as ``lttd``
   preemptions, which — following the paper's footnote 4 — the analyzer
   excludes from noise totals).
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from repro import obs
from repro.simkernel.distributions import DurationModel, from_stats
from repro.simkernel.task import Task, TaskKind
from repro.tracing.ctf import Packet, Trace, packet_from_subbuffer
from repro.tracing.events import TraceSink
from repro.tracing.ringbuffer import Mode, RingBuffer
from repro.util.units import MSEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.node import ComputeNode

#: Default per-record write cost, in the ballpark of LTTng's measured
#: sub-microsecond probe cost.
DEFAULT_RECORD_OVERHEAD_NS = 60


class Tracer(TraceSink):
    """Per-CPU ring-buffer recording with a collection daemon."""

    def __init__(
        self,
        node: "ComputeNode",
        subbuf_size: int = 256 * 1024,
        n_subbufs: int = 8,
        mode: Mode = Mode.DISCARD,
        record_overhead_ns: int = DEFAULT_RECORD_OVERHEAD_NS,
        flush_period_ns: int = 100 * MSEC,
        daemon_service: Optional[DurationModel] = None,
        enabled_events: Optional["object"] = None,
        packet_sink: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        """``enabled_events``: iterable of event ids / names restricting
        what gets recorded (LTTng's enable-event).  None records all.
        Disabled tracepoints cost nothing and write nothing — but beware:
        analysis passes need their inputs (e.g. preemption reconstruction
        needs sched_switch and task_state).

        ``packet_sink``: called with each packet as its sub-buffer is
        drained, instead of retaining it — streaming collection, e.g.
        :meth:`repro.stream.StreamingAnalysis.feed_packet`.  With a sink,
        :meth:`finish` returns a trace shell without packets."""
        if record_overhead_ns < 0:
            raise ValueError("record overhead must be non-negative")
        self.node = node
        self.record_overhead_ns = record_overhead_ns
        self.enabled_events: Optional[frozenset] = None
        if enabled_events is not None:
            from repro.tracing.events import NAME_TO_EVENT

            resolved = set()
            for item in enabled_events:
                if isinstance(item, str):
                    try:
                        resolved.add(int(NAME_TO_EVENT[item]))
                    except KeyError:
                        raise ValueError(f"unknown event name: {item!r}")
                else:
                    resolved.add(int(item))
            self.enabled_events = frozenset(resolved)
        self.records_filtered = 0
        self.flush_period_ns = flush_period_ns
        self.buffers: List[RingBuffer] = [
            RingBuffer(cpu.index, subbuf_size, n_subbufs, mode)
            for cpu in node.cpus
        ]
        self._packets: List[Packet] = []
        self._packet_sink = packet_sink
        self.packets_streamed = 0
        self.drains = 0
        self.subbufs_consumed = 0
        self._start_ts: Optional[int] = None
        self._attached = False
        self._finished = False
        self.daemon: Optional[Task] = None
        self._daemon_service = (
            daemon_service
            if daemon_service is not None
            else from_stats(5_000, 25_000, 200_000)
        )

    # ------------------------------------------------------------------
    def attach(self) -> "Tracer":
        """Install on the node; must happen before the node starts."""
        if self._attached:
            raise RuntimeError("tracer already attached")
        self._attached = True
        self._start_ts = self.node.engine.now
        self.node.attach_sink(self)
        # The collection daemon: wakes on a timer, drains sub-buffers.
        self.daemon = self.node.add_daemon(
            "lttd",
            TaskKind.TRACERD,
            rate_per_sec=1e9 / self.flush_period_ns,
            service=self._daemon_service,
            cpu="random",
        )
        # Drain on a deterministic schedule too (data-plane side of the
        # daemon; the DaemonDriver bursts model its CPU cost).
        self._schedule_drain()
        return self

    def _schedule_drain(self) -> None:
        def drain() -> None:
            if self._finished:
                return
            self._drain()
            self._schedule_drain()

        self.node.engine.schedule_after(self.flush_period_ns, drain)

    def _drain(self) -> None:
        self.drains += 1
        for rb in self.buffers:
            taken = rb.consume()
            self.subbufs_consumed += len(taken)
            for sb in taken:
                self._emit_packet(packet_from_subbuffer(rb.cpu, sb))
        if obs.enabled():
            for rb in self.buffers:
                obs.gauge("tracing.ring_occupancy", cpu=rb.cpu).set(
                    rb.occupancy()
                )

    def _emit_packet(self, packet: Packet) -> None:
        if self._packet_sink is not None:
            self.packets_streamed += 1
            self._packet_sink(packet)
        else:
            self._packets.append(packet)

    # ------------------------------------------------------------------
    # TraceSink interface
    # ------------------------------------------------------------------
    def emit(
        self, time: int, event: int, cpu: int, flag: int, pid: int, arg: int
    ) -> None:
        if self.enabled_events is not None and event not in self.enabled_events:
            self.records_filtered += 1
            return
        self.buffers[cpu].write(time, event, cpu, flag, pid, arg)

    def cost_ns(self, event: int) -> int:
        if self.enabled_events is not None and event not in self.enabled_events:
            return 0
        return self.record_overhead_ns

    # ------------------------------------------------------------------
    def finish(self) -> Trace:
        """Stop recording and assemble the final trace."""
        if not self._attached:
            raise RuntimeError("tracer was never attached")
        self._finished = True
        for rb in self.buffers:
            flushed = rb.flush()
            self.subbufs_consumed += len(flushed)
            for sb in flushed:
                self._emit_packet(packet_from_subbuffer(rb.cpu, sb))
        if obs.enabled():
            self._report_counters()
        trace = Trace(
            ncpus=self.node.config.ncpus,
            start_ts=self._start_ts or 0,
            end_ts=self.node.engine.now,
            packets=sorted(self._packets, key=lambda p: (p.cpu, p.begin_ts)),
        )
        return trace

    def _report_counters(self) -> None:
        """Publish the recording's counters to the obs registry (cold path,
        run once per trace).  Zero values register too, so loss counters
        always appear in a self-profile even on a clean run."""
        obs.counter("tracing.records_written").inc(self.records_written)
        obs.counter("tracing.records_lost").inc(self.records_lost)
        obs.counter("tracing.records_filtered").inc(self.records_filtered)
        obs.counter("tracing.subbuf_flushes").inc(self.drains)
        obs.counter("tracing.subbufs_consumed").inc(self.subbufs_consumed)
        obs.counter("tracing.subbuf_switches").inc(
            sum(rb.subbuf_switches for rb in self.buffers)
        )
        obs.counter("tracing.overwritten_subbufs").inc(
            sum(rb.overwritten_subbufs for rb in self.buffers)
        )

    # ------------------------------------------------------------------
    @property
    def records_written(self) -> int:
        return sum(rb.records_written for rb in self.buffers)

    @property
    def records_lost(self) -> int:
        return sum(rb.records_lost for rb in self.buffers)
