"""Binary trace format (CTF-flavoured).

A trace is a *trace header* followed by a stream of *packets*; each packet is
one sub-buffer: a packet header plus densely packed 24-byte records.  The
layout is deliberately close in spirit to LTTng's CTF output (per-CPU packet
streams, packet-level lost-event counters, ns timestamps) while staying
simple enough to decode in bulk with numpy.

Packets may be zlib-compressed (flag bit 0).  The paper's Section III-B
suggests "data-compression techniques at run-time to reduce the data-size"
for cluster-scale tracing; kernel event streams are highly repetitive and
compress ~4-6x (see ``benchmarks/bench_ext_cluster.py``).

Layout (all little-endian)::

    trace header:  magic u32 ('LTNZ'), version u16, ncpus u16,
                   start_ts u64, end_ts u64, reserved u64
    packet:        magic u32 ('LPKT'), cpu u16, flags u16,
                   n_records u32, lost_before u32, payload_bytes u32,
                   begin_ts u64, end_ts u64,
                   then payload_bytes bytes (records, possibly compressed)
"""

from __future__ import annotations

import io
import struct
import zlib
from dataclasses import dataclass, field
from typing import BinaryIO, List, Union

import numpy as np

from repro import obs
from repro.tracing.events import RECORD_DTYPE, RECORD_SIZE
from repro.tracing.ringbuffer import SubBuffer

TRACE_MAGIC = 0x4C544E5A  # 'LTNZ'
PACKET_MAGIC = 0x4C504B54  # 'LPKT'
VERSION = 2

#: Packet flag: payload is zlib-compressed.
FLAG_COMPRESSED = 0x0001

_TRACE_HEADER = struct.Struct("<IHHQQQ")
_PACKET_HEADER = struct.Struct("<IHHIIIQQ")


class TraceFormatError(ValueError):
    """Raised on malformed trace bytes."""


@dataclass
class Packet:
    """One decoded packet (sub-buffer) of trace records."""

    cpu: int
    n_records: int
    lost_before: int
    begin_ts: int
    end_ts: int
    payload: bytes  # always uncompressed in memory

    def records(self) -> np.ndarray:
        """Decode the payload into a structured array (zero-copy view)."""
        return np.frombuffer(self.payload, dtype=RECORD_DTYPE)


@dataclass
class Trace:
    """A complete decoded trace."""

    ncpus: int
    start_ts: int
    end_ts: int
    packets: List[Packet] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def records_lost(self) -> int:
        return sum(p.lost_before for p in self.packets)

    @property
    def span_ns(self) -> int:
        return self.end_ts - self.start_ts

    def records(self) -> np.ndarray:
        """All records merged across CPUs, stably sorted by timestamp."""
        if not self.packets:
            return np.empty(0, dtype=RECORD_DTYPE)
        with obs.span("trace-decode"):
            parts = [p.records() for p in self.packets]
            merged = np.concatenate(parts)
            order = np.argsort(merged["time"], kind="stable")
            out = merged[order]
        if obs.enabled():
            obs.counter("decode.records").inc(len(out))
            obs.counter("decode.packets").inc(len(self.packets))
        return out

    def cpu_records(self, cpu: int) -> np.ndarray:
        """One CPU's records in timestamp order."""
        parts = [p.records() for p in self.packets if p.cpu == cpu]
        if not parts:
            return np.empty(0, dtype=RECORD_DTYPE)
        merged = np.concatenate(parts)
        order = np.argsort(merged["time"], kind="stable")
        return merged[order]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_bytes(self, compress: bool = False) -> bytes:
        out = io.BytesIO()
        self.write(out, compress=compress)
        return out.getvalue()

    def write(self, fp: BinaryIO, compress: bool = False) -> None:
        fp.write(
            _TRACE_HEADER.pack(
                TRACE_MAGIC, VERSION, self.ncpus, self.start_ts, self.end_ts, 0
            )
        )
        for p in self.packets:
            if len(p.payload) != p.n_records * RECORD_SIZE:
                raise TraceFormatError(
                    f"packet payload size mismatch on cpu {p.cpu}"
                )
            flags = 0
            payload = p.payload
            if compress and payload:
                compressed = zlib.compress(payload, level=6)
                if len(compressed) < len(payload):
                    flags |= FLAG_COMPRESSED
                    payload = compressed
            fp.write(
                _PACKET_HEADER.pack(
                    PACKET_MAGIC,
                    p.cpu,
                    flags,
                    p.n_records,
                    p.lost_before,
                    len(payload),
                    p.begin_ts,
                    p.end_ts,
                )
            )
            fp.write(payload)

    def to_file(self, path: str, compress: bool = False) -> None:
        with open(path, "wb") as fp:
            self.write(fp, compress=compress)

    # ------------------------------------------------------------------
    @staticmethod
    def from_bytes(data: Union[bytes, bytearray]) -> "Trace":
        return Trace.read(io.BytesIO(bytes(data)))

    @staticmethod
    def from_file(path: str) -> "Trace":
        with open(path, "rb") as fp:
            return Trace.read(fp)

    @staticmethod
    def read(fp: BinaryIO) -> "Trace":
        header = fp.read(_TRACE_HEADER.size)
        if len(header) < _TRACE_HEADER.size:
            raise TraceFormatError("truncated trace header")
        magic, version, ncpus, start_ts, end_ts, _ = _TRACE_HEADER.unpack(header)
        if magic != TRACE_MAGIC:
            raise TraceFormatError(f"bad trace magic: {magic:#x}")
        if version != VERSION:
            raise TraceFormatError(f"unsupported trace version: {version}")
        trace = Trace(ncpus=ncpus, start_ts=start_ts, end_ts=end_ts)
        while True:
            phead = fp.read(_PACKET_HEADER.size)
            if not phead:
                break
            if len(phead) < _PACKET_HEADER.size:
                raise TraceFormatError("truncated packet header")
            (
                pmagic,
                cpu,
                flags,
                n_records,
                lost,
                payload_bytes,
                begin_ts,
                pend_ts,
            ) = _PACKET_HEADER.unpack(phead)
            if pmagic != PACKET_MAGIC:
                raise TraceFormatError(f"bad packet magic: {pmagic:#x}")
            payload = fp.read(payload_bytes)
            if len(payload) < payload_bytes:
                raise TraceFormatError("truncated packet payload")
            if flags & FLAG_COMPRESSED:
                try:
                    payload = zlib.decompress(payload)
                except zlib.error as exc:
                    raise TraceFormatError(f"corrupt compressed packet: {exc}")
            if len(payload) != n_records * RECORD_SIZE:
                raise TraceFormatError(
                    f"packet payload size mismatch on cpu {cpu}"
                )
            trace.packets.append(
                Packet(
                    cpu=cpu,
                    n_records=n_records,
                    lost_before=lost,
                    begin_ts=begin_ts,
                    end_ts=pend_ts,
                    payload=payload,
                )
            )
        return trace


def packet_from_subbuffer(cpu: int, sb: SubBuffer) -> Packet:
    """Convert a consumed ring-buffer sub-buffer into a trace packet."""
    return Packet(
        cpu=cpu,
        n_records=sb.n_records,
        lost_before=sb.lost_before,
        begin_ts=sb.begin_ts,
        end_ts=sb.end_ts,
        payload=bytes(sb.data),
    )
