"""Binary trace format (CTF-flavoured).

A trace is a *trace header* followed by a stream of *packets*; each packet is
one sub-buffer: a packet header plus densely packed 24-byte records.  The
layout is deliberately close in spirit to LTTng's CTF output (per-CPU packet
streams, packet-level lost-event counters, ns timestamps) while staying
simple enough to decode in bulk with numpy.

Packets may be zlib-compressed (flag bit 0).  The paper's Section III-B
suggests "data-compression techniques at run-time to reduce the data-size"
for cluster-scale tracing; kernel event streams are highly repetitive and
compress ~4-6x (see ``benchmarks/bench_ext_cluster.py``).

Layout (all little-endian)::

    trace header:  magic u32 ('LTNZ'), version u16, ncpus u16,
                   start_ts u64, end_ts u64, reserved u64
    packet:        magic u32 ('LPKT'), cpu u16, flags u16,
                   n_records u32, lost_before u32, payload_bytes u32,
                   begin_ts u64, end_ts u64,
                   then payload_bytes bytes (records, possibly compressed)
"""

from __future__ import annotations

import io
import struct
import zlib
from dataclasses import dataclass, field
from typing import BinaryIO, Iterator, List, Tuple, Union

import numpy as np

from repro import obs
from repro.tracing.events import RECORD_DTYPE, RECORD_SIZE
from repro.tracing.ringbuffer import SubBuffer

TRACE_MAGIC = 0x4C544E5A  # 'LTNZ'
PACKET_MAGIC = 0x4C504B54  # 'LPKT'
VERSION = 2

#: Packet flag: payload is zlib-compressed.
FLAG_COMPRESSED = 0x0001

_TRACE_HEADER = struct.Struct("<IHHQQQ")
_PACKET_HEADER = struct.Struct("<IHHIIIQQ")


class TraceFormatError(ValueError):
    """Raised on malformed trace bytes."""


def _read_exact(fp: BinaryIO, n: int) -> bytes:
    """Read exactly ``n`` bytes, looping over short reads.

    ``fp.read(n)`` is allowed to return fewer bytes than requested for any
    non-regular stream (pipes, sockets, interactive readers); trusting a
    single call silently mis-decodes a slow stream.  Only end of stream
    ends the loop early — the caller decides whether a short result means
    clean EOF or truncation.
    """
    chunks: List[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = fp.read(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


@dataclass
class Packet:
    """One decoded packet (sub-buffer) of trace records."""

    cpu: int
    n_records: int
    lost_before: int
    begin_ts: int
    end_ts: int
    payload: bytes  # always uncompressed in memory

    def records(self) -> np.ndarray:
        """Decode the payload into a structured array (zero-copy view)."""
        return np.frombuffer(self.payload, dtype=RECORD_DTYPE)


@dataclass
class Trace:
    """A complete decoded trace."""

    ncpus: int
    start_ts: int
    end_ts: int
    packets: List[Packet] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def records_lost(self) -> int:
        return sum(p.lost_before for p in self.packets)

    @property
    def span_ns(self) -> int:
        return self.end_ts - self.start_ts

    def records(self) -> np.ndarray:
        """All records merged across CPUs, stably sorted by timestamp."""
        if not self.packets:
            return np.empty(0, dtype=RECORD_DTYPE)
        with obs.span("trace-decode"):
            parts = [p.records() for p in self.packets]
            merged = np.concatenate(parts)
            order = np.argsort(merged["time"], kind="stable")
            out = merged[order]
        if obs.enabled():
            obs.counter("decode.records").inc(len(out))
            obs.counter("decode.packets").inc(len(self.packets))
        return out

    def records_with_gaps(self) -> Tuple[np.ndarray, List[Tuple[int, int, int]]]:
        """Merged records plus lost-event gap markers.

        Returns ``(records, gaps)`` where ``records`` is exactly what
        :meth:`records` returns and each gap is ``(cpu, gap_ts, pos)``:
        a packet with ``lost_before > 0`` marks events lost *before* it,
        so the analysis must resynchronize at the packet's ``begin_ts``
        (``gap_ts``) — the first timestamp known good after the loss.
        ``pos`` anchors the gap positionally in the merged array: the gap
        happens before the record at index ``pos`` (for an empty packet,
        before that CPU's next record in a later packet, or at
        ``len(records)`` when no record follows).  Positional anchoring
        avoids any ambiguity between records sharing a timestamp.
        """
        if not self.packets:
            return np.empty(0, dtype=RECORD_DTYPE), []
        with obs.span("trace-decode"):
            parts = [p.records() for p in self.packets]
            merged = np.concatenate(parts)
            order = np.argsort(merged["time"], kind="stable")
        if obs.enabled():
            obs.counter("decode.records").inc(len(merged))
            obs.counter("decode.packets").inc(len(self.packets))
        pos_of_orig = np.empty(len(merged), dtype=np.int64)
        pos_of_orig[order] = np.arange(len(merged))
        offsets = np.concatenate(
            ([0], np.cumsum([len(x) for x in parts])[:-1])
        )
        gaps: List[Tuple[int, int, int]] = []
        for i, p in enumerate(self.packets):
            if p.lost_before <= 0:
                continue
            # Anchor at this packet's first record; an empty packet (e.g.
            # the flush tail sub-buffer) anchors at the CPU's next record.
            anchor = len(merged)
            for j in range(i, len(self.packets)):
                if self.packets[j].cpu == p.cpu and len(parts[j]):
                    anchor = int(pos_of_orig[offsets[j]])
                    break
            gaps.append((p.cpu, p.begin_ts, anchor))
        gaps.sort(key=lambda g: g[2])
        return merged[order], gaps

    def cpu_records(self, cpu: int) -> np.ndarray:
        """One CPU's records in timestamp order."""
        parts = [p.records() for p in self.packets if p.cpu == cpu]
        if not parts:
            return np.empty(0, dtype=RECORD_DTYPE)
        merged = np.concatenate(parts)
        order = np.argsort(merged["time"], kind="stable")
        return merged[order]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_bytes(self, compress: bool = False) -> bytes:
        out = io.BytesIO()
        self.write(out, compress=compress)
        return out.getvalue()

    def write(self, fp: BinaryIO, compress: bool = False) -> None:
        fp.write(
            _TRACE_HEADER.pack(
                TRACE_MAGIC, VERSION, self.ncpus, self.start_ts, self.end_ts, 0
            )
        )
        for p in self.packets:
            if len(p.payload) != p.n_records * RECORD_SIZE:
                raise TraceFormatError(
                    f"packet payload size mismatch on cpu {p.cpu}"
                )
            flags = 0
            payload = p.payload
            if compress and payload:
                compressed = zlib.compress(payload, level=6)
                if len(compressed) < len(payload):
                    flags |= FLAG_COMPRESSED
                    payload = compressed
            fp.write(
                _PACKET_HEADER.pack(
                    PACKET_MAGIC,
                    p.cpu,
                    flags,
                    p.n_records,
                    p.lost_before,
                    len(payload),
                    p.begin_ts,
                    p.end_ts,
                )
            )
            fp.write(payload)

    def to_file(self, path: str, compress: bool = False) -> None:
        with open(path, "wb") as fp:
            self.write(fp, compress=compress)

    # ------------------------------------------------------------------
    @staticmethod
    def from_bytes(data: Union[bytes, bytearray]) -> "Trace":
        return Trace.read(io.BytesIO(bytes(data)))

    @staticmethod
    def from_file(path: str) -> "Trace":
        with open(path, "rb") as fp:
            return Trace.read(fp)

    @staticmethod
    def read(fp: BinaryIO) -> "Trace":
        trace = read_trace_header(fp)
        trace.packets.extend(iter_packets(fp))
        return trace


def read_trace_header(fp: BinaryIO) -> Trace:
    """Decode the trace header, returning an empty :class:`Trace` shell.

    The shell carries ``ncpus``/``start_ts``/``end_ts``; the caller decides
    whether to slurp packets into it (:meth:`Trace.read`) or to stream them
    one at a time with :func:`iter_packets`.
    """
    header = _read_exact(fp, _TRACE_HEADER.size)
    if len(header) < _TRACE_HEADER.size:
        raise TraceFormatError("truncated trace header")
    magic, version, ncpus, start_ts, end_ts, _ = _TRACE_HEADER.unpack(header)
    if magic != TRACE_MAGIC:
        raise TraceFormatError(f"bad trace magic: {magic:#x}")
    if version != VERSION:
        raise TraceFormatError(f"unsupported trace version: {version}")
    return Trace(ncpus=ncpus, start_ts=start_ts, end_ts=end_ts)


def iter_packets(fp: BinaryIO) -> Iterator[Packet]:
    """Yield packets one at a time from a stream positioned after the
    trace header.

    Packet-granular and short-read tolerant: every read loops until the
    requested byte count arrives, so slow pipes decode identically to
    files, and a stream cut mid-packet raises :class:`TraceFormatError`
    naming the packet index instead of silently mis-decoding.
    """
    index = 0
    while True:
        phead = _read_exact(fp, _PACKET_HEADER.size)
        if not phead:
            return
        if len(phead) < _PACKET_HEADER.size:
            raise TraceFormatError(
                f"truncated packet header (packet #{index}: "
                f"{len(phead)} of {_PACKET_HEADER.size} bytes)"
            )
        (
            pmagic,
            cpu,
            flags,
            n_records,
            lost,
            payload_bytes,
            begin_ts,
            pend_ts,
        ) = _PACKET_HEADER.unpack(phead)
        if pmagic != PACKET_MAGIC:
            raise TraceFormatError(
                f"bad packet magic: {pmagic:#x} (packet #{index})"
            )
        payload = _read_exact(fp, payload_bytes)
        if len(payload) < payload_bytes:
            raise TraceFormatError(
                f"truncated packet payload (packet #{index}, cpu {cpu}: "
                f"{len(payload)} of {payload_bytes} bytes)"
            )
        if flags & FLAG_COMPRESSED:
            try:
                payload = zlib.decompress(payload)
            except zlib.error as exc:
                raise TraceFormatError(
                    f"corrupt compressed packet (packet #{index}): {exc}"
                )
        if len(payload) != n_records * RECORD_SIZE:
            raise TraceFormatError(
                f"packet payload size mismatch on cpu {cpu} (packet #{index})"
            )
        yield Packet(
            cpu=cpu,
            n_records=n_records,
            lost_before=lost,
            begin_ts=begin_ts,
            end_ts=pend_ts,
            payload=payload,
        )
        index += 1


def packet_from_subbuffer(cpu: int, sb: SubBuffer) -> Packet:
    """Convert a consumed ring-buffer sub-buffer into a trace packet."""
    return Packet(
        cpu=cpu,
        n_records=sb.n_records,
        lost_before=sb.lost_before,
        begin_ts=sb.begin_ts,
        end_ts=sb.end_ts,
        payload=bytes(sb.data),
    )
