"""Per-CPU ring buffers, after LTTng's design.

LTTng achieves its low overhead with per-CPU, lock-less ring buffers split
into *sub-buffers*: the tracer writes into the current sub-buffer and flips
to the next when full; the consumer daemon takes completed sub-buffers.  If
the consumer falls behind, either new events are *discarded* or the oldest
unconsumed sub-buffer is *overwritten* (flight-recorder mode) — both modes
count what was lost, because honest lost-event accounting is part of trace
correctness.

The simulation is single-threaded so no actual locking is needed; what this
module preserves is the *semantics*: bounded memory, sub-buffer granularity,
per-mode loss behaviour and loss accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List

from repro.tracing.events import RECORD_SIZE, pack_record


class Mode(Enum):
    """What to do when the buffer is full."""

    DISCARD = "discard"      # drop new events
    OVERWRITE = "overwrite"  # drop the oldest unconsumed sub-buffer


@dataclass
class SubBuffer:
    """One sub-buffer: a bounded byte area plus packet metadata."""

    capacity_bytes: int
    data: bytearray = field(default_factory=bytearray)
    begin_ts: int = 0
    end_ts: int = 0
    n_records: int = 0
    #: Events lost (discarded or overwritten) before this sub-buffer.
    lost_before: int = 0

    def room(self) -> int:
        return self.capacity_bytes - len(self.data)

    def append(self, record: bytes, timestamp: int) -> None:
        if self.n_records == 0:
            self.begin_ts = timestamp
        self.data += record
        self.end_ts = timestamp
        self.n_records += 1


class RingBuffer:
    """One CPU's ring of sub-buffers."""

    def __init__(
        self,
        cpu: int,
        subbuf_size: int = 64 * 1024,
        n_subbufs: int = 4,
        mode: Mode = Mode.DISCARD,
    ) -> None:
        if subbuf_size < RECORD_SIZE:
            raise ValueError("sub-buffer must hold at least one record")
        if n_subbufs < 2:
            raise ValueError("need at least two sub-buffers")
        self.cpu = cpu
        self.subbuf_size = subbuf_size
        self.n_subbufs = n_subbufs
        self.mode = mode
        self._current = SubBuffer(subbuf_size)
        #: Completed, unconsumed sub-buffers (oldest first).
        self._full: List[SubBuffer] = []
        self.records_written = 0
        self.records_lost = 0
        self.overwritten_subbufs = 0
        self.subbuf_switches = 0
        self._lost_since_switch = 0
        self._last_loss_ts = 0

    # ------------------------------------------------------------------
    def write(
        self, time: int, event: int, cpu: int, flag: int, pid: int, arg: int
    ) -> bool:
        """Append one record.  Returns False if it was lost."""
        record = pack_record(time, event, cpu, flag, pid, arg)
        if self._current.room() < RECORD_SIZE:
            if not self._switch():
                # DISCARD mode with all sub-buffers full: lose the event.
                self.records_lost += 1
                self._lost_since_switch += 1
                self._last_loss_ts = time
                return False
        self._current.append(record, time)
        self.records_written += 1
        return True

    def _switch(self) -> bool:
        """Retire the current sub-buffer and open a fresh one."""
        if len(self._full) >= self.n_subbufs - 1:
            if self.mode == Mode.DISCARD:
                return False
            # OVERWRITE: drop the oldest unconsumed sub-buffer.  Its
            # records are reclassified written -> lost, so that
            # ``records_written`` always counts records still retrievable
            # and written + lost == events emitted in every mode.  The
            # victim's own ``lost_before`` (already counted in
            # ``records_lost``) must be carried forward, not destroyed
            # with it, or those losses vanish from the consumed stream.
            victim = self._full.pop(0)
            self.records_lost += victim.n_records
            self.records_written -= victim.n_records
            self._lost_since_switch += victim.n_records + victim.lost_before
            self._last_loss_ts = victim.end_ts
            self.overwritten_subbufs += 1
        self._full.append(self._current)
        self._current = SubBuffer(self.subbuf_size)
        self._current.lost_before = self._lost_since_switch
        self._lost_since_switch = 0
        self.subbuf_switches += 1
        return True

    # ------------------------------------------------------------------
    def consume(self) -> List[SubBuffer]:
        """Take all completed sub-buffers (the consumer daemon's read)."""
        taken, self._full = self._full, []
        return taken

    def flush(self) -> List[SubBuffer]:
        """Finalize: retire the current sub-buffer too and take everything.

        Losses that happened after the last switch would otherwise never
        surface in any consumed sub-buffer's ``lost_before`` (they were
        parked to be reported by the *next* sub-buffer, which will never
        exist) — so flush emits a final, possibly empty, sub-buffer that
        carries the residual count.  This keeps the accounting invariant
        ``consumed + sum(lost_before) == records_written + records_lost``
        exact at end of trace in both modes.
        """
        if self._current.n_records > 0:
            self._full.append(self._current)
            self._current = SubBuffer(self.subbuf_size)
        if self._lost_since_switch > 0:
            tail = SubBuffer(self.subbuf_size)
            tail.lost_before = self._lost_since_switch
            tail.begin_ts = tail.end_ts = self._last_loss_ts
            self._full.append(tail)
            self._lost_since_switch = 0
        return self.consume()

    def unconsumed_bytes(self) -> int:
        return sum(len(sb.data) for sb in self._full) + len(self._current.data)

    def occupancy(self) -> float:
        """Unconsumed bytes as a fraction of total ring capacity."""
        return self.unconsumed_bytes() / (self.subbuf_size * self.n_subbufs)
