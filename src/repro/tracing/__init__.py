"""LTTng-like tracing substrate: tracepoints, ring buffers, binary codec."""

from repro.tracing.events import (
    Ev,
    Flag,
    EVENT_NAMES,
    RECORD_DTYPE,
    ListSink,
    NullSink,
    TraceSink,
    event_name,
    is_paired,
)

__all__ = [
    "Ev",
    "Flag",
    "EVENT_NAMES",
    "RECORD_DTYPE",
    "ListSink",
    "NullSink",
    "TraceSink",
    "event_name",
    "is_paired",
]
