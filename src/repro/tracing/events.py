"""Kernel trace-event vocabulary.

The paper instruments *all* kernel entry and exit points (interrupts,
exceptions, system calls) plus the main kernel activities (scheduler,
softirqs, memory management).  This module defines that vocabulary for the
simulated node: numeric event IDs, entry/exit/point flags, kernel-style
names, and the fixed binary record layout shared by the ring buffers and the
CTF codec.
"""

from __future__ import annotations

import struct
from enum import IntEnum
from typing import Dict, List, Tuple

import numpy as np


class Ev(IntEnum):
    """Trace event identifiers.

    IDs below :data:`FIRST_POINT_EVENT` are *paired* activities: every ENTRY
    record is matched by an EXIT record on the same CPU, and pairs may nest
    (an interrupt arriving during an exception handler).  IDs at or above it
    are instantaneous *point* events.
    """

    # --- paired kernel activities -------------------------------------
    IRQ_TIMER = 1          # local APIC timer interrupt (top half)
    IRQ_NET = 2            # network device interrupt (top half)
    SOFTIRQ_TIMER = 3      # run_timer_softirq (the paper's "bottom half")
    SOFTIRQ_RCU = 4        # rcu_process_callbacks
    SOFTIRQ_SCHED = 5      # run_rebalance_domains
    TASKLET_NET_RX = 6     # net_rx_action (serialized tasklet)
    TASKLET_NET_TX = 7     # net_tx_action (serialized tasklet)
    EXC_PAGE_FAULT = 8     # page fault exception handler
    SYSCALL = 9            # system call entry/exit
    SCHED_CALL = 10        # the schedule() function itself
    TRACER_FLUSH = 11      # the lttng-noise collection daemon's own activity
    INJECTED = 12          # synthetic noise from the injection framework

    # --- point events ---------------------------------------------------
    SCHED_SWITCH = 32      # context switch: arg = prev_pid << 32 | next_pid
    SCHED_WAKEUP = 33      # task wakeup: arg = pid
    SCHED_MIGRATE = 34     # task migration: arg = pid << 8 | dest_cpu
    TASK_STATE = 35        # task state change: arg = pid << 8 | TaskState
    TIMER_EXPIRE = 36      # software timer fired: arg = timer id
    MARKER = 37            # workload marker (phase change, FTQ quantum, ...)


#: Event IDs >= this value are point events (no EXIT record).
FIRST_POINT_EVENT = 32


class Flag(IntEnum):
    """Record flag: activity boundary kind."""

    ENTRY = 0
    EXIT = 1
    POINT = 2


#: Kernel-style display names, matching the paper's terminology.
EVENT_NAMES: Dict[int, str] = {
    Ev.IRQ_TIMER: "timer_interrupt",
    Ev.IRQ_NET: "net_interrupt",
    Ev.SOFTIRQ_TIMER: "run_timer_softirq",
    Ev.SOFTIRQ_RCU: "rcu_process_callbacks",
    Ev.SOFTIRQ_SCHED: "run_rebalance_domains",
    Ev.TASKLET_NET_RX: "net_rx_action",
    Ev.TASKLET_NET_TX: "net_tx_action",
    Ev.EXC_PAGE_FAULT: "page_fault",
    Ev.SYSCALL: "syscall",
    Ev.SCHED_CALL: "schedule",
    Ev.TRACER_FLUSH: "tracer_flush",
    Ev.INJECTED: "injected_noise",
    Ev.SCHED_SWITCH: "sched_switch",
    Ev.SCHED_WAKEUP: "sched_wakeup",
    Ev.SCHED_MIGRATE: "sched_migrate",
    Ev.TASK_STATE: "task_state",
    Ev.TIMER_EXPIRE: "timer_expire",
    Ev.MARKER: "marker",
}

NAME_TO_EVENT: Dict[str, int] = {name: ev for ev, name in EVENT_NAMES.items()}


def is_paired(event: int) -> bool:
    """True if the event has ENTRY/EXIT records (a kernel activity)."""
    return event < FIRST_POINT_EVENT


def event_name(event: int) -> str:
    """Kernel-style name for an event ID (``event_<n>`` if unknown)."""
    return EVENT_NAMES.get(event, f"event_{event}")


# ----------------------------------------------------------------------
# Binary record layout (shared by ring buffers and the CTF codec)
# ----------------------------------------------------------------------

#: struct format of one record: time u64, event u16, cpu u8, flag u8,
#: pid i32, arg u64 — 24 bytes, little endian, no padding.
RECORD_STRUCT = struct.Struct("<QHBBiQ")

#: Size of one serialized record in bytes.
RECORD_SIZE = RECORD_STRUCT.size

#: numpy dtype matching :data:`RECORD_STRUCT`, for bulk decoding.
RECORD_DTYPE = np.dtype(
    [
        ("time", "<u8"),
        ("event", "<u2"),
        ("cpu", "u1"),
        ("flag", "u1"),
        ("pid", "<i4"),
        ("arg", "<u8"),
    ]
)

assert RECORD_DTYPE.itemsize == RECORD_SIZE, "record dtype must be packed"


def pack_record(
    time: int, event: int, cpu: int, flag: int, pid: int, arg: int
) -> bytes:
    """Serialize one record (used by the ring-buffer writer)."""
    return RECORD_STRUCT.pack(time, event, cpu, flag, pid, arg)


def unpack_record(data: bytes) -> "Tuple[int, int, int, int, int, int]":
    """Deserialize one record."""
    return RECORD_STRUCT.unpack(data)


# ----------------------------------------------------------------------
# Argument encoding helpers for point events
# ----------------------------------------------------------------------

def encode_switch(prev_pid: int, next_pid: int) -> int:
    """Pack a context-switch argument."""
    if not (0 <= prev_pid < 2**31 and 0 <= next_pid < 2**31):
        raise ValueError("pids must fit in 31 bits")
    return (prev_pid << 32) | next_pid


def decode_switch(arg: int) -> "Tuple[int, int]":
    """Unpack a context-switch argument into ``(prev_pid, next_pid)``."""
    return (int(arg) >> 32, int(arg) & 0xFFFFFFFF)


def encode_task_state(pid: int, state: int) -> int:
    """Pack a task-state-change argument."""
    if not 0 <= state < 256:
        raise ValueError("state must fit in 8 bits")
    return (pid << 8) | state


def decode_task_state(arg: int) -> "Tuple[int, int]":
    """Unpack a task-state-change argument into ``(pid, state)``."""
    return (int(arg) >> 8, int(arg) & 0xFF)


def encode_migrate(pid: int, dest_cpu: int) -> int:
    """Pack a migration argument."""
    if not 0 <= dest_cpu < 256:
        raise ValueError("dest_cpu must fit in 8 bits")
    return (pid << 8) | dest_cpu


def decode_migrate(arg: int) -> "Tuple[int, int]":
    """Unpack a migration argument into ``(pid, dest_cpu)``."""
    return (int(arg) >> 8, int(arg) & 0xFF)


class TraceSink:
    """Destination for tracepoint records.

    The simulated kernel calls :meth:`emit` at every instrumentation point.
    ``record_overhead_ns`` is the cost of writing one record; the kernel adds
    it to the duration of the enclosing activity so that enabling tracing
    *perturbs the simulation itself*, exactly as real instrumentation does
    (this is what the paper's 0.28 % overhead figure measures).
    """

    #: Simulated cost of writing a single record, in nanoseconds.
    record_overhead_ns: int = 0

    def emit(
        self, time: int, event: int, cpu: int, flag: int, pid: int, arg: int
    ) -> None:
        raise NotImplementedError

    def cost_ns(self, event: int) -> int:
        """Write cost for one record of this event type.

        Sinks that filter events return 0 for disabled ones — a compiled-in
        but disabled tracepoint costs (almost) nothing, which is exactly why
        LTTng-style static instrumentation is viable."""
        return self.record_overhead_ns


class NullSink(TraceSink):
    """Discard all records (tracing disabled)."""

    record_overhead_ns = 0

    def emit(
        self, time: int, event: int, cpu: int, flag: int, pid: int, arg: int
    ) -> None:
        pass


class ListSink(TraceSink):
    """Collect records into a Python list — handy for unit tests."""

    def __init__(self, record_overhead_ns: int = 0) -> None:
        self.records: List[Tuple[int, int, int, int, int, int]] = []
        self.record_overhead_ns = record_overhead_ns

    def emit(
        self, time: int, event: int, cpu: int, flag: int, pid: int, arg: int
    ) -> None:
        self.records.append((time, event, cpu, flag, pid, arg))

    def as_array(self) -> np.ndarray:
        """Return collected records as a numpy structured array."""
        arr = np.zeros(len(self.records), dtype=RECORD_DTYPE)
        for i, (t, e, c, f, p, a) in enumerate(self.records):
            arr[i] = (t, e, c, f, p, a)
        return arr
