"""Time-series samples: the pipeline's own metrics, watched over time.

The paper's method is longitudinal — a system is explained by watching
its behavior evolve, not by one end-of-run snapshot.  This module gives
the obs layer the same treatment: a *sample* is one timestamped reading
of every scalar series in a :class:`~repro.obs.metrics.MetricsRegistry`
(see :meth:`~repro.obs.metrics.MetricsRegistry.scalar_values`), and a
:class:`SampleRing` holds a bounded window of them in memory while
optionally spilling every sample to an append-only JSON-lines file.

Sample schema (version 1), one JSON object per line::

    {"type": "sample-meta", "schema": 1, "pid": 4242,
     "period_ms": 100, "label": "sweep"}          # first line, per file
    {"seq": 0, "mono_ns": 81234567890, "pid": 4242,
     "metrics": {"cache.hit": 3, "store.bytes": 1048576, ...}}

* ``mono_ns`` is ``time.monotonic_ns()`` — on Linux, CLOCK_MONOTONIC is
  shared by every process since boot, so per-worker sample files merge
  into one global timeline by plain timestamp order;
* ``seq`` increments per sampler, so gaps within one worker are visible
  (a dead worker's file simply stops; flush-per-line means nothing that
  was sampled is ever lost);
* ``metrics`` maps :func:`~repro.obs.metrics.series_key` to the scalar
  value at sample time — counters/gauges directly, histograms as
  ``key:count`` / ``key:sum``.

Spill files are the cross-process half of the protocol: each process
(the parent and every pool worker) writes ``samples-<pid>.jsonl`` into a
shared directory, and :func:`load_sample_dir` merges them back in global
timestamp order — the time-series analogue of how worker span buffers
merge into the parent registry.
"""

from __future__ import annotations

import heapq
import json
import os
import time
from collections import deque
from typing import Any, Dict, IO, Iterable, List, Optional

#: Version stamp carried by every spill file's leading meta line.
SAMPLE_SCHEMA = 1

#: Spill file naming: one file per sampling process.
SAMPLE_FILE_PREFIX = "samples-"
SAMPLE_FILE_SUFFIX = ".jsonl"

Sample = Dict[str, Any]


def make_sample(seq: int, metrics: Dict[str, float],
                mono_ns: Optional[int] = None,
                pid: Optional[int] = None) -> Sample:
    """One timestamped reading of the registry's scalar series."""
    return {
        "seq": int(seq),
        "mono_ns": int(mono_ns if mono_ns is not None
                       else time.monotonic_ns()),
        "pid": int(pid if pid is not None else os.getpid()),
        "metrics": metrics,
    }


def sample_file_path(directory: str, pid: Optional[int] = None) -> str:
    """The per-process spill file for ``pid`` under ``directory``."""
    who = pid if pid is not None else os.getpid()
    return os.path.join(
        directory, f"{SAMPLE_FILE_PREFIX}{who}{SAMPLE_FILE_SUFFIX}"
    )


class SampleRing:
    """Bounded in-memory sample window with optional JSON-lines spill.

    The ring keeps the most recent ``maxlen`` samples for live
    consumers (the ``obs tail`` dashboard, the sweep summary); when a
    ``spill_path`` is given every appended sample is *also* written out
    and flushed immediately, so the on-disk record is complete even if
    the process dies between samples.  Without a spill path, samples
    that fall off the ring are counted in :attr:`dropped` — bounded
    memory is honest about what it forgot.
    """

    def __init__(self, maxlen: int = 4096,
                 spill_path: Optional[str] = None,
                 meta: Optional[Dict[str, Any]] = None) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self.maxlen = maxlen
        self._ring: "deque[Sample]" = deque(maxlen=maxlen)
        self.spill_path = spill_path
        self._fp: Optional[IO[str]] = None
        self._meta = dict(meta or {})
        self.appended = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    def _file(self) -> IO[str]:
        if self._fp is None or self._fp.closed:
            directory = os.path.dirname(self.spill_path or "")
            if directory:
                os.makedirs(directory, exist_ok=True)
            assert self.spill_path is not None
            fresh = not os.path.exists(self.spill_path)
            self._fp = open(self.spill_path, "a", encoding="utf-8")  # noiselint: disable=CON001 -- ring is sampler-thread confined; stop() joins before main touches it
            if fresh:
                header = {
                    "type": "sample-meta",
                    "schema": SAMPLE_SCHEMA,
                    "pid": os.getpid(),
                }
                header.update(self._meta)
                self._fp.write(json.dumps(header, sort_keys=True) + "\n")
                self._fp.flush()
        return self._fp

    def append(self, sample: Sample) -> None:
        """Ring-append; spills and flushes when a spill path is set."""
        if (self.spill_path is None
                and len(self._ring) == self.maxlen):
            self.dropped += 1  # noiselint: disable=CON001 -- ring is sampler-thread confined; stop() joins before main touches it
        self._ring.append(sample)
        self.appended += 1  # noiselint: disable=CON001 -- ring is sampler-thread confined; stop() joins before main touches it
        if self.spill_path is not None:
            fp = self._file()
            fp.write(json.dumps(sample, sort_keys=True) + "\n")
            fp.flush()

    def samples(self) -> List[Sample]:
        """The in-memory window, oldest first."""
        return list(self._ring)

    def last(self) -> Optional[Sample]:
        return self._ring[-1] if self._ring else None

    def __len__(self) -> int:
        return len(self._ring)

    def close(self) -> None:
        if self._fp is not None and not self._fp.closed:
            self._fp.close()

    def __enter__(self) -> "SampleRing":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Reading spill files back
# ----------------------------------------------------------------------

def load_sample_file(path: str) -> List[Sample]:
    """Samples of one spill file, in write (= per-worker time) order.

    Meta lines are skipped; a corrupt *final* line is the signature of a
    process killed mid-write and is dropped silently (the same torn-write
    tolerance as the sweep journal); corruption elsewhere raises.
    """
    with open(path, "r", encoding="utf-8") as fp:
        raw = fp.read().split("\n")
    last_content = len(raw) - 1
    while last_content >= 0 and not raw[last_content].strip():
        last_content -= 1
    out: List[Sample] = []
    for lineno, line in enumerate(raw[: last_content + 1], start=1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except ValueError as exc:
            if lineno == last_content + 1:
                continue  # torn final write: lose one sample, not the file
            raise ValueError(
                f"{path}:{lineno}: corrupt sample line"
            ) from exc
        if not isinstance(entry, dict) or entry.get("type") == "sample-meta":
            continue
        if "mono_ns" not in entry:
            raise ValueError(f"{path}:{lineno}: sample has no mono_ns")
        out.append(entry)
    return out


def merge_samples(*streams: Iterable[Sample]) -> List[Sample]:
    """Merge per-worker sample streams into one global timeline.

    Each stream must already be time-ordered (a sampler writes
    monotonically by construction); the merge is stable on
    ``(mono_ns, pid, seq)`` so equal timestamps keep a deterministic
    order across hosts and runs.
    """
    def key(sample: Sample):
        return (sample["mono_ns"], sample.get("pid", 0),
                sample.get("seq", 0))

    return list(heapq.merge(*streams, key=key))


def sample_files_in(directory: str) -> List[str]:
    """Every per-process spill file under ``directory``, name-sorted."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.startswith(SAMPLE_FILE_PREFIX)
        and name.endswith(SAMPLE_FILE_SUFFIX)
    )


def load_sample_dir(directory: str) -> List[Sample]:
    """All workers' samples merged into one global timeline."""
    return merge_samples(
        *(load_sample_file(path) for path in sample_files_in(directory))
    )


def series_from_samples(samples: Iterable[Sample],
                        key: str) -> List["tuple[int, float]"]:
    """One metric's ``(mono_ns, value)`` trajectory across samples."""
    out = []
    for sample in samples:
        value = sample.get("metrics", {}).get(key)
        if value is not None:
            out.append((int(sample["mono_ns"]), float(value)))
    return out
