"""Operator tools over telemetry: the ``lttng-noise obs`` family.

Three verbs, all file-based so they work on live runs and archived
artifacts alike:

* :func:`tail` — a curses-free TTY dashboard following a running sweep's
  plan directory: the journal gives done/failed/running counts, arrival
  deltas give a rate and ETA, and the ``samples/`` spill files give one
  lane per sampling process (parent + every pool worker).  Pure ANSI
  (clear + home), degrades to plain frame dumps when stdout is not a
  TTY, and ``once=True`` renders a single frame for scripts and CI.
* :func:`load_metrics_file` + :func:`diff_metrics` — the ``obs diff``
  engine: both a ``--obs`` JSON-lines capture and a benchmark trajectory
  JSON flatten to ``{metric: scalar}``, baselines may declare per-metric
  *gates* (direction + relative tolerance), and a regression is an exit
  code, not a judgment call.  See ``docs/observability.md`` for the
  threshold policy.

The dashboard reads the same files the sweep writes anyway (plan.json,
journal.jsonl, samples-*.jsonl) — there is no side channel to a running
process, which is exactly why an interrupted sweep can be tailed, and a
finished one replayed.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, IO, List, Optional, Tuple

from repro.obs.export import aggregate, read_jsonl
from repro.obs.timeseries import load_sample_file, sample_files_in

#: Default relative threshold for ungated ``obs diff`` comparisons.
DEFAULT_DIFF_THRESHOLD = 0.2

#: Sub-directory of a plan dir where samplers spill their files.
SAMPLES_DIRNAME = "samples"


# ----------------------------------------------------------------------
# obs tail: plan-directory progress
# ----------------------------------------------------------------------

def read_plan_progress(plan_dir: str) -> Dict[str, Any]:
    """Current campaign state from a plan directory's on-disk record."""
    from repro.exec.journal import Journal
    from repro.exec.plan import JOURNAL_FILENAME, PLAN_FILENAME

    plan_path = os.path.join(plan_dir, PLAN_FILENAME)
    with open(plan_path, "r", encoding="utf-8") as fp:
        plan = json.load(fp)
    total = len(plan.get("specs", []))
    journal = Journal(os.path.join(plan_dir, JOURNAL_FILENAME))
    states: Dict[str, str] = {}
    cached = 0
    elapsed_s = 0.0
    for _, entry in journal._lines():
        token = str(entry["token"])
        state = str(entry.get("state", ""))
        states[token] = state
        if state == "done":
            if entry.get("cached"):
                cached += 1
            elapsed_s += float(entry.get("elapsed_s", 0.0))
    done = sum(1 for s in states.values() if s == "done")
    return {
        "total": total,
        "done": done,
        "failed": sum(1 for s in states.values() if s == "failed"),
        "running": sum(1 for s in states.values() if s == "running"),
        "cached": cached,
        "busy_s": elapsed_s,
        "shards": int(plan.get("shards", 1)),
        "version": str(plan.get("version", "?")),
    }


def worker_lanes(plan_dir: str) -> List[Dict[str, Any]]:
    """One row per sampling process, from the spill files' last samples."""
    samples_dir = os.path.join(plan_dir, SAMPLES_DIRNAME)
    lanes = []
    for path in sample_files_in(samples_dir):
        try:
            samples = load_sample_file(path)
        except (OSError, ValueError):
            continue
        if not samples:
            continue
        last = samples[-1]
        metrics = last.get("metrics", {})
        lanes.append({
            "pid": last.get("pid"),
            "samples": len(samples),
            "mono_ns": int(last["mono_ns"]),
            "runs": metrics.get("runner.runs", 0),
            "cache_hits": metrics.get("cache.hit", 0),
        })
    if lanes:
        newest = max(lane["mono_ns"] for lane in lanes)
        for lane in lanes:
            lane["age_s"] = (newest - lane["mono_ns"]) / 1e9
    return lanes


def _bar(done: int, total: int, width: int = 30) -> str:
    filled = int(width * done / total) if total else 0
    return "[" + "#" * filled + "." * (width - filled) + "]"


class TailSession:
    """Stateful frame renderer: remembers arrivals to derive rate/ETA."""

    def __init__(self, plan_dir: str) -> None:
        self.plan_dir = plan_dir
        self._prev_done: Optional[int] = None
        self._prev_t: Optional[float] = None
        self.rate: Optional[float] = None

    def frame(self) -> Tuple[str, Dict[str, Any]]:
        progress = read_plan_progress(self.plan_dir)
        now = time.monotonic()
        done = progress["done"]
        if self._prev_done is not None and self._prev_t is not None:
            dt = now - self._prev_t
            if dt > 0 and done >= self._prev_done:
                inst = (done - self._prev_done) / dt
                # EWMA keeps the ETA readable between bursty arrivals.
                self.rate = (
                    inst if self.rate is None
                    else 0.5 * self.rate + 0.5 * inst
                )
        self._prev_done, self._prev_t = done, now

        total = progress["total"]
        remaining = max(0, total - done - progress["failed"])
        lines = [
            f"sweep {os.path.abspath(self.plan_dir)}  "
            f"(version {progress['version']}, "
            f"{progress['shards']} shards)",
            f"  {_bar(done, total)} {done}/{total} done"
            + (f", {progress['failed']} failed" if progress["failed"]
               else "")
            + (f", {progress['running']} running"
               if progress["running"] else ""),
        ]
        ratio = (progress["cached"] / done) if done else 0.0
        line = (
            f"  cached {progress['cached']}/{done}"
            f" ({100 * ratio:.0f}%)  busy {progress['busy_s']:.1f}s"
        )
        if self.rate is not None and self.rate > 0:
            eta = remaining / self.rate
            line += f"  rate {self.rate:.1f}/s  eta {eta:.0f}s"
        lines.append(line)
        lanes = worker_lanes(self.plan_dir)
        if lanes:
            lines.append(f"  {len(lanes)} sampler lane(s):")
            for lane in sorted(lanes, key=lambda d: d["pid"] or 0):
                lines.append(
                    f"    pid {lane['pid']:>7}  {lane['samples']:>5} samples"
                    f"  runs {int(lane['runs']):>5}"
                    f"  hits {int(lane['cache_hits']):>5}"
                    f"  ({lane['age_s']:.1f}s behind)"
                )
        state = dict(progress, lanes=len(lanes))
        return "\n".join(lines), state


def tail(
    plan_dir: str,
    *,
    once: bool = False,
    interval_s: float = 0.5,
    out: Optional[IO[str]] = None,
    max_frames: Optional[int] = None,
) -> int:
    """Follow a sweep's plan directory until the campaign finishes.

    Returns 0 when every planned spec ended ``done``, 1 when any ended
    ``failed``.  ``once=True`` renders a single frame (scripts / CI);
    ``max_frames`` bounds the loop for tests.
    """
    stream = out if out is not None else sys.stdout
    session = TailSession(plan_dir)
    is_tty = hasattr(stream, "isatty") and stream.isatty()
    frames = 0
    while True:
        frame, state = session.frame()
        if is_tty and frames:
            stream.write("\x1b[2J\x1b[H")  # clear + home: the dashboard
        stream.write(frame + "\n")
        stream.flush()
        frames += 1
        finished = (
            state["total"] > 0
            and state["done"] + state["failed"] >= state["total"]
        )
        if once or finished:
            return 1 if state["failed"] else 0
        if max_frames is not None and frames >= max_frames:
            return 1 if state["failed"] else 0
        time.sleep(interval_s)


# ----------------------------------------------------------------------
# obs diff: regression gating between two telemetry files
# ----------------------------------------------------------------------

def flatten_aggregate(agg: Dict[str, Any]) -> Dict[str, float]:
    """An :func:`~repro.obs.export.aggregate` dict as one flat scalar map."""
    out: Dict[str, float] = {}
    for key, value in agg.get("counters", {}).items():
        out[key] = float(value)
    for key, value in agg.get("gauges", {}).items():
        out[key] = float(value)
    for key, entry in agg.get("histograms", {}).items():
        out[key + ":count"] = float(entry["count"])
        out[key + ":sum"] = float(entry["sum"])
    for name, entry in agg.get("spans", {}).items():
        out[f"span.{name}.count"] = float(entry["count"])
        out[f"span.{name}.total_ms"] = float(entry["total_ms"])
    return out


def _flatten_numeric(data: Any, prefix: str = "") -> Dict[str, float]:
    out: Dict[str, float] = {}
    if isinstance(data, dict):
        for key, value in data.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(_flatten_numeric(value, path))
    elif isinstance(data, bool):
        pass  # bools are flags, not metrics
    elif isinstance(data, (int, float)):
        out[prefix] = float(data)
    return out


def load_metrics_file(
    path: str,
) -> Tuple[Dict[str, float], Dict[str, Dict[str, Any]]]:
    """A telemetry file as ``(metrics, gates)``.

    Accepts either a ``--obs`` JSON-lines capture (flattened through
    :func:`~repro.obs.export.aggregate`) or a plain JSON document — a
    benchmark trajectory with a ``metrics`` section (whose sibling
    ``gates`` section, if present, declares per-metric comparison
    policy), or any JSON object, whose numeric leaves become dotted
    metric names.
    """
    with open(path, "r", encoding="utf-8") as fp:
        head = fp.read(1)
    if path.endswith(".jsonl"):
        return flatten_aggregate(aggregate(read_jsonl(path))), {}
    if head != "{":
        raise ValueError(f"{path}: not a telemetry JSON/JSONL file")
    with open(path, "r", encoding="utf-8") as fp:
        first_line = fp.readline()
        rest = fp.readline()
    if rest.strip():  # multiple JSON objects: a JSON-lines capture
        try:
            parsed = json.loads(first_line)
        except ValueError:
            parsed = None
        if isinstance(parsed, dict) and "type" in parsed:
            return flatten_aggregate(aggregate(read_jsonl(path))), {}
    with open(path, "r", encoding="utf-8") as fp:
        data = json.load(fp)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: telemetry JSON must be an object")
    gates = data.get("gates")
    if isinstance(data.get("metrics"), dict):
        metrics = _flatten_numeric(data["metrics"])
    else:
        metrics = _flatten_numeric(
            {k: v for k, v in data.items() if k != "gates"}
        )
    return metrics, dict(gates) if isinstance(gates, dict) else {}


def diff_metrics(
    base: Dict[str, float],
    cand: Dict[str, float],
    gates: Optional[Dict[str, Dict[str, Any]]] = None,
    threshold: float = DEFAULT_DIFF_THRESHOLD,
) -> List[Dict[str, Any]]:
    """Compare candidate metrics against a baseline.

    With *gates* (a baseline's ``gates`` section), only gated metrics can
    regress: each gate names a direction (``higher``/``lower`` is better)
    and a relative tolerance, and a missing non-``optional`` metric is
    itself a regression.  Without gates, every shared metric is compared
    lower-is-better at the uniform ``threshold``.  Returns one row per
    compared metric, regressions first.
    """
    rows: List[Dict[str, Any]] = []

    def rel_change(b: float, c: float) -> float:
        if b == 0:
            return 0.0 if c == 0 else float("inf") * (1 if c > 0 else -1)
        return (c - b) / abs(b)

    if gates:
        for metric in sorted(gates):
            gate = gates[metric]
            direction = str(gate.get("direction", "lower"))
            tol = float(gate.get("rel_tol", threshold))
            optional = bool(gate.get("optional", False))
            b, c = base.get(metric), cand.get(metric)
            if b is None or c is None:
                rows.append({
                    "metric": metric, "base": b, "cand": c,
                    "rel": None, "gated": True,
                    "regressed": not optional,
                    "note": "missing" + (" (optional)" if optional
                                         else ""),
                })
                continue
            rel = rel_change(b, c)
            if direction == "higher":
                regressed = c < b * (1 - tol)
            else:
                regressed = c > b * (1 + tol)
            rows.append({
                "metric": metric, "base": b, "cand": c, "rel": rel,
                "gated": True, "regressed": regressed,
                "note": f"{direction}-is-better, tol {tol:.0%}",
            })
        for metric in sorted(set(base) & set(cand) - set(gates)):
            rows.append({
                "metric": metric, "base": base[metric],
                "cand": cand[metric],
                "rel": rel_change(base[metric], cand[metric]),
                "gated": False, "regressed": False, "note": "ungated",
            })
    else:
        for metric in sorted(set(base) & set(cand)):
            b, c = base[metric], cand[metric]
            rel = rel_change(b, c)
            rows.append({
                "metric": metric, "base": b, "cand": c, "rel": rel,
                "gated": False,
                "regressed": c > b * (1 + threshold) if b > 0
                else (b == 0 and c > 0),
                "note": f"lower-is-better, tol {threshold:.0%}",
            })
        for metric in sorted(set(base) - set(cand)):
            rows.append({
                "metric": metric, "base": base[metric], "cand": None,
                "rel": None, "gated": False, "regressed": False,
                "note": "missing in candidate",
            })
    rows.sort(key=lambda row: (not row["regressed"], row["metric"]))
    return rows


def format_diff(rows: List[Dict[str, Any]]) -> str:
    """Human-readable diff table, regressions flagged with ``!``."""
    def num(value: Optional[float]) -> str:
        if value is None:
            return "-"
        return f"{value:.4g}"

    lines = [
        f"{'':2}{'metric':<40} {'base':>12} {'cand':>12} {'change':>9}"
    ]
    for row in rows:
        rel = row["rel"]
        change = (
            "-" if rel is None
            else ("inf" if rel == float("inf") else f"{rel:+.1%}")
        )
        flag = "! " if row["regressed"] else "  "
        lines.append(
            f"{flag}{row['metric']:<40} {num(row['base']):>12} "
            f"{num(row['cand']):>12} {change:>9}  {row['note']}"
        )
    regressed = [row for row in rows if row["regressed"]]
    lines.append(
        f"{len(rows)} metric(s) compared, {len(regressed)} regression(s)"
    )
    return "\n".join(lines)


def diff_files(
    base_path: str,
    cand_path: str,
    threshold: float = DEFAULT_DIFF_THRESHOLD,
) -> Tuple[List[Dict[str, Any]], int]:
    """``obs diff`` driver: rows plus the process exit code (1 = regressed).

    The baseline's ``gates`` section, when present, defines the
    comparison policy; the candidate's gates are ignored (the committed
    baseline is the contract).
    """
    base, gates = load_metrics_file(base_path)
    cand, _ = load_metrics_file(cand_path)
    rows = diff_metrics(base, cand, gates=gates, threshold=threshold)
    return rows, (1 if any(row["regressed"] for row in rows) else 0)
