"""Background sampler: periodic time-series snapshots of the registry.

One :class:`Sampler` per process turns the end-of-run metrics registry
into a longitudinal record: a daemon thread wakes every ``period_s``,
reads every scalar series
(:meth:`~repro.obs.metrics.MetricsRegistry.scalar_values`) and appends a
timestamped sample to a bounded :class:`~repro.obs.timeseries.SampleRing`
— optionally spilling JSON lines into a shared directory so ``obs tail``
can follow a running sweep and per-worker files merge back into one
timeline afterwards.

Overhead discipline mirrors the registry's: sampling is O(live series),
happens on its own thread (never inside instrumented code), and nothing
in the hot paths knows the sampler exists — it reads the same counters
the boundary code already publishes.  ``tests/test_obs.py`` gates the
100 ms sampler at <2 % wall overhead on a 1 s FTQ pipeline.

Cross-process protocol
----------------------
:meth:`Sampler.start` with ``export_env=True`` publishes the sampling
period and spill directory through the environment (next to
:data:`~repro.obs.metrics.OBS_ENV`), so process-pool workers inherit the
sampling mode exactly like they inherit obs mode.  The worker entry point
(:func:`repro.exec.runner.execute_spec_serialized`) calls
:func:`maybe_start_worker_sampler` once per process: each worker then
writes its own ``samples-<pid>.jsonl`` beside the parent's, flushed per
sample, so a worker killed mid-interval loses nothing already sampled.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.timeseries import (
    Sample,
    SampleRing,
    sample_file_path,
)

#: Environment: sampling period in ms; presence means "sample here too".
OBS_SAMPLE_ENV = "LTTNG_NOISE_OBS_SAMPLE_MS"
#: Environment: shared spill directory for per-process sample files.
OBS_SPILL_ENV = "LTTNG_NOISE_OBS_SPILL"

#: Default sampling period (the paper-style low-overhead cadence).
DEFAULT_PERIOD_S = 0.1
#: Default bounded ring size (~7 min of samples at 100 ms).
DEFAULT_MAXLEN = 4096


class Sampler:
    """Daemon-thread periodic sampler over one metrics registry."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        period_s: float = DEFAULT_PERIOD_S,
        maxlen: int = DEFAULT_MAXLEN,
        spill_dir: Optional[str] = None,
        label: str = "main",
    ) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.registry = registry if registry is not None else REGISTRY
        self.period_s = period_s
        self.spill_dir = spill_dir
        self.label = label
        self.ring = SampleRing(
            maxlen=maxlen,
            spill_path=(
                sample_file_path(spill_dir) if spill_dir is not None
                else None
            ),
            meta={"period_ms": int(period_s * 1000), "label": label},
        )
        self._seq = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        #: Serializes start/stop: a service shutting down calls stop()
        #: from both its atexit hook and its SIGTERM path, possibly on
        #: two threads at once — exactly one of them may emit the
        #: closing sample.
        self._lifecycle = threading.Lock()
        self._exported_env = False
        self._last_mono_ns: Optional[int] = None
        #: Overhead/cadence accounting, embedded in sweep summaries.
        self.sample_cost_ns = 0
        self.max_sample_cost_ns = 0
        self.max_gap_ns = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self, export_env: bool = False) -> "Sampler":
        """Begin periodic sampling (idempotent).

        ``export_env=True`` publishes the period (and spill directory,
        when set) through the environment so worker processes spawned
        after this point sample themselves too.
        """
        with self._lifecycle:
            if self.running:
                return self
            if export_env:
                os.environ[OBS_SAMPLE_ENV] = str(int(self.period_s * 1000))
                if self.spill_dir is not None:
                    os.environ[OBS_SPILL_ENV] = self.spill_dir
                self._exported_env = True
            self._stop.clear()
            # t=0 baseline so every capture has >=1 sample.
            self.sample_now()
            self._thread = threading.Thread(
                target=self._loop, name=f"obs-sampler-{self.label}",
                daemon=True,
            )
            self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.period_s):
            self.sample_now()

    def stop(self) -> List[Sample]:
        """Stop the thread, take a final sample, close the spill file.

        Returns the in-memory sample window.  Idempotent — including
        under *concurrent* callers: a process shutting down may reach
        here from its atexit hook and a SIGTERM handler at once, and
        exactly one of them takes the closing sample (the loser sees the
        thread already claimed and just returns the window).
        """
        with self._lifecycle:
            thread, self._thread = self._thread, None
            if thread is not None:
                self._stop.set()
                thread.join(timeout=max(1.0, 10 * self.period_s))
                self.sample_now()  # closing reading: the end-of-run state
            if self._exported_env:
                os.environ.pop(OBS_SAMPLE_ENV, None)
                os.environ.pop(OBS_SPILL_ENV, None)
                self._exported_env = False
            self.ring.close()
            return self.ring.samples()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_now(self) -> Sample:
        """Take one sample immediately (also usable without the thread)."""
        t0 = time.monotonic_ns()
        metrics = self.registry.scalar_values()
        sample: Sample = {
            "seq": self._seq,
            "mono_ns": t0,
            "pid": os.getpid(),
            "metrics": metrics,
        }
        self._seq += 1  # noiselint: disable=CON001 -- worker-thread only; stop() joins before the closing sample
        if self._last_mono_ns is not None:
            gap = t0 - self._last_mono_ns
            if gap > self.max_gap_ns:
                self.max_gap_ns = gap  # noiselint: disable=CON001 -- worker-thread only; stop() joins before the closing sample
        self._last_mono_ns = t0  # noiselint: disable=CON001 -- worker-thread only; stop() joins before the closing sample
        self.ring.append(sample)
        cost = time.monotonic_ns() - t0
        self.sample_cost_ns += cost  # noiselint: disable=CON001 -- worker-thread only; stop() joins before the closing sample
        if cost > self.max_sample_cost_ns:
            self.max_sample_cost_ns = cost  # noiselint: disable=CON001 -- worker-thread only; stop() joins before the closing sample
        return sample

    def samples(self) -> List[Sample]:
        return self.ring.samples()

    def stats(self) -> Dict[str, Any]:
        """Sampler self-accounting for summaries and CI artifacts."""
        return {
            "period_ms": int(self.period_s * 1000),
            "samples": self.ring.appended,
            "dropped": self.ring.dropped,
            "spill": self.ring.spill_path,
            "sample_cost_ms_total": round(self.sample_cost_ns / 1e6, 3),
            "sample_cost_ms_max": round(self.max_sample_cost_ns / 1e6, 3),
            "max_gap_ms": round(self.max_gap_ns / 1e6, 3),
        }


# ----------------------------------------------------------------------
# Worker-side autostart (the OBS_ENV-style inheritance)
# ----------------------------------------------------------------------

_worker_sampler: Optional[Sampler] = None


def maybe_start_worker_sampler(
    registry: Optional[MetricsRegistry] = None,
) -> Optional[Sampler]:
    """Start this process's sampler if a parent asked for sampling.

    Called from worker entry points (cheap when sampling is off: one
    environment lookup).  The sampler is process-global and keeps
    running for the worker's lifetime, spilling to its own
    ``samples-<pid>.jsonl``; the daemon thread dies with the process and
    flush-per-line guarantees every taken sample is on disk.
    """
    global _worker_sampler
    period_ms = os.environ.get(OBS_SAMPLE_ENV)
    if not period_ms:
        return None
    if _worker_sampler is not None and _worker_sampler.running:
        return _worker_sampler
    reg = registry if registry is not None else REGISTRY
    if not reg.enabled:
        return None
    try:
        period_s = max(1, int(period_ms)) / 1000.0
    except ValueError:
        return None
    spill_dir = os.environ.get(OBS_SPILL_ENV) or None
    _worker_sampler = Sampler(
        registry=reg, period_s=period_s, spill_dir=spill_dir,
        label=f"worker-{os.getpid()}",
    )
    _worker_sampler.start(export_env=False)
    return _worker_sampler


def stop_worker_sampler() -> None:
    """Tear down the process-global worker sampler (tests, reuse)."""
    global _worker_sampler
    if _worker_sampler is not None:
        _worker_sampler.stop()
        _worker_sampler = None
