"""Serialize a run's self-telemetry: JSON-lines and Chrome trace format.

Two consumers, two shapes:

* :func:`write_jsonl` — one JSON object per line (a ``meta`` line, then
  every counter/gauge/histogram series and every span), the archival form
  CI and benchmark sidecars keep;
* :func:`write_chrome_trace` — the Trace Event Format, following the same
  conventions as :mod:`repro.io.chrometrace` (microsecond ``ts``/``dur``,
  a ``traceEvents`` envelope, process-name metadata), so the pipeline's own
  execution opens in Perfetto exactly like the simulated kernel's traces.
  Spans become complete ("X") slices per (pid, tid); metric series become
  counter ("C") tracks.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.metrics import REGISTRY, MetricsRegistry


def snapshot(registry: Optional[MetricsRegistry] = None) -> Dict[str, Any]:
    """The registry's current contents as plain data."""
    return (registry if registry is not None else REGISTRY).snapshot()


def _series_key(entry: Dict[str, Any]) -> str:
    labels = entry.get("labels") or {}
    if not labels:
        return entry["name"]
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{entry['name']}{{{inner}}}"


# ----------------------------------------------------------------------
# JSON-lines
# ----------------------------------------------------------------------

def write_jsonl(path: str, snap: Optional[Dict[str, Any]] = None) -> int:
    """Write the snapshot as JSON-lines; returns the number of lines."""
    snap = snap if snap is not None else snapshot()
    lines: List[str] = [json.dumps({"type": "meta", **snap["meta"]})]
    for kind in ("counters", "gauges", "histograms"):
        for entry in snap[kind]:
            lines.append(json.dumps({"type": kind[:-1], **entry}))
    for entry in snap["spans"]:
        lines.append(json.dumps({"type": "span", **entry}))
    with open(path, "w") as fp:
        fp.write("\n".join(lines) + "\n")
    return len(lines)


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------

def chrome_events(snap: Optional[Dict[str, Any]] = None) -> List[dict]:
    """Convert a telemetry snapshot into Trace Event Format dicts."""
    snap = snap if snap is not None else snapshot()
    epoch = snap["meta"]["epoch_ns"]
    own_pid = snap["meta"]["pid"]
    events: List[dict] = []
    last_us = 0.0
    pids = {own_pid}
    for s in snap["spans"]:
        ts = max(0.0, (s["start_ns"] - epoch) / 1000.0)
        dur = s["dur_ns"] / 1000.0
        last_us = max(last_us, ts + dur)
        pids.add(s["pid"])
        events.append(
            {
                "name": s["name"],
                "cat": "pipeline",
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": s["pid"],
                "tid": s["tid"],
                "args": {
                    "cpu_ms": s["cpu_ns"] / 1e6,
                    "mem_peak_kb": s["mem_peak_kb"],
                    "depth": s["depth"],
                    "error": s["error"],
                    **(s.get("labels") or {}),
                },
            }
        )
    # Metric series as counter tracks, sampled once at the profile's end so
    # Perfetto shows the final value alongside the span timeline.
    for kind in ("counters", "gauges"):
        for entry in snap[kind]:
            events.append(
                {
                    "name": _series_key(entry),
                    "cat": "metrics",
                    "ph": "C",
                    "ts": last_us,
                    "pid": own_pid,
                    "args": {"value": entry["value"]},
                }
            )
    for entry in snap["histograms"]:
        events.append(
            {
                "name": _series_key(entry),
                "cat": "metrics",
                "ph": "C",
                "ts": last_us,
                "pid": own_pid,
                "args": {"count": entry["count"], "sum": entry["sum"]},
            }
        )
    for pid in sorted(pids):
        name = (
            "lttng-noise pipeline" if pid == own_pid else f"worker {pid}"
        )
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": name},
            }
        )
    return events


def write_chrome_trace(
    path: str, snap: Optional[Dict[str, Any]] = None
) -> int:
    """Write a Perfetto-loadable self-profile; returns the event count."""
    events = chrome_events(snap)
    payload = {"traceEvents": events, "displayTimeUnit": "ns"}
    with open(path, "w") as fp:
        json.dump(payload, fp)
    return len(events)


# ----------------------------------------------------------------------
# Compact aggregate (benchmark sidecars)
# ----------------------------------------------------------------------

def aggregate(snap: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Flatten a snapshot for embedding in benchmark JSON: scalar series
    keyed by ``name{labels}``, spans rolled up per name."""
    snap = snap if snap is not None else snapshot()
    spans: Dict[str, Dict[str, float]] = {}
    for s in snap["spans"]:
        agg = spans.setdefault(
            s["name"], {"count": 0, "total_ms": 0.0, "max_ms": 0.0}
        )
        agg["count"] += 1
        ms = s["dur_ns"] / 1e6
        agg["total_ms"] += ms
        agg["max_ms"] = max(agg["max_ms"], ms)
    return {
        "counters": {
            _series_key(e): e["value"] for e in snap["counters"]
        },
        "gauges": {_series_key(e): e["value"] for e in snap["gauges"]},
        "histograms": {
            _series_key(e): {"count": e["count"], "sum": e["sum"]}
            for e in snap["histograms"]
        },
        "spans": spans,
    }
