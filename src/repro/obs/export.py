"""Serialize a run's self-telemetry: JSON-lines and Chrome trace format.

Two consumers, two shapes:

* :func:`write_jsonl` — one JSON object per line (a ``meta`` line, then
  every counter/gauge/histogram series and every span), the archival form
  CI and benchmark sidecars keep;
* :func:`write_chrome_trace` — the Trace Event Format, following the same
  conventions as :mod:`repro.io.chrometrace` (microsecond ``ts``/``dur``,
  a ``traceEvents`` envelope, process-name metadata), so the pipeline's own
  execution opens in Perfetto exactly like the simulated kernel's traces.
  Spans become complete ("X") slices per (pid, tid); metric series become
  counter ("C") tracks.
* :func:`prometheus_text` — the Prometheus text exposition format
  (counters as ``_total``, histograms with cumulative ``_bucket{le=...}``
  plus ``_sum``/``_count``), so any scraper or Grafana agent can ingest a
  capture; ``lttng-noise obs export --format prom`` is the CLI surface.

:func:`read_jsonl` reads a ``write_jsonl`` capture back into snapshot
shape, which is what lets ``obs export`` re-target a saved capture and
``obs diff`` compare two of them.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional

from repro.obs.metrics import REGISTRY, MetricsRegistry, series_key


def snapshot(registry: Optional[MetricsRegistry] = None) -> Dict[str, Any]:
    """The registry's current contents as plain data."""
    return (registry if registry is not None else REGISTRY).snapshot()


def _series_key(entry: Dict[str, Any]) -> str:
    return series_key(entry["name"], entry.get("labels"))


# ----------------------------------------------------------------------
# JSON-lines
# ----------------------------------------------------------------------

def write_jsonl(path: str, snap: Optional[Dict[str, Any]] = None) -> int:
    """Write the snapshot as JSON-lines; returns the number of lines."""
    snap = snap if snap is not None else snapshot()
    lines: List[str] = [json.dumps({"type": "meta", **snap["meta"]})]
    for kind in ("counters", "gauges", "histograms"):
        for entry in snap[kind]:
            lines.append(json.dumps({"type": kind[:-1], **entry}))
    for entry in snap["spans"]:
        lines.append(json.dumps({"type": "span", **entry}))
    with open(path, "w") as fp:
        fp.write("\n".join(lines) + "\n")
    return len(lines)


def read_jsonl(path: str) -> Dict[str, Any]:
    """Read a :func:`write_jsonl` capture back into snapshot shape.

    The inverse of the writer (types ``meta`` / ``counter`` / ``gauge`` /
    ``histogram`` / ``span`` map back to the snapshot's sections), so a
    saved ``--obs`` capture can be re-exported to another format or
    compared with ``obs diff``.  Unknown line types are ignored for
    forward compatibility.
    """
    snap: Dict[str, Any] = {
        "meta": {}, "counters": [], "gauges": [],
        "histograms": [], "spans": [],
    }
    sections = {
        "counter": "counters", "gauge": "gauges",
        "histogram": "histograms", "span": "spans",
    }
    with open(path, "r", encoding="utf-8") as fp:
        for lineno, line in enumerate(fp, start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{lineno}: corrupt telemetry line"
                ) from exc
            kind = entry.pop("type", None)
            if kind == "meta":
                snap["meta"] = entry
            elif kind in sections:
                snap[sections[kind]].append(entry)
    return snap


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

#: Metric-name prefix for every exposed series.
PROM_PREFIX = "lttng_noise_"

_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Series name → Prometheus metric name (dots and dashes become _)."""
    return PROM_PREFIX + _PROM_NAME_BAD.sub("_", name)


def _prom_labels(labels: Optional[Dict[str, Any]]) -> str:
    if not labels:
        return ""
    parts = []
    for k, v in sorted(labels.items()):
        key = _PROM_NAME_BAD.sub("_", str(k))
        val = str(v).replace("\\", r"\\").replace('"', r"\"")
        val = val.replace("\n", r"\n")
        parts.append(f'{key}="{val}"')
    return "{" + ",".join(parts) + "}"


def _prom_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(float(value))


def prometheus_text(snap: Optional[Dict[str, Any]] = None) -> str:
    """A snapshot in the Prometheus text exposition format (version 0.0.4).

    Counters are exposed with the conventional ``_total`` suffix,
    histograms with *cumulative* ``_bucket{le=...}`` series ending in
    ``le="+Inf"`` plus ``_sum`` and ``_count``, and span rollups as two
    gauges (``span_count`` / ``span_total_ms``) labeled by span name —
    enough for a Grafana dashboard to chart sweep progress and phase
    cost without any custom ingestion.
    """
    snap = snap if snap is not None else snapshot()
    lines: List[str] = []
    seen_families = set()

    def family(name: str, kind: str, help_text: str) -> None:
        if name in seen_families:
            return
        seen_families.add(name)
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    for entry in snap.get("counters", ()):
        name = _prom_name(entry["name"]) + "_total"
        family(name, "counter", f"counter {entry['name']}")
        lines.append(
            f"{name}{_prom_labels(entry.get('labels'))} "
            f"{_prom_number(entry['value'])}"
        )
    for entry in snap.get("gauges", ()):
        name = _prom_name(entry["name"])
        family(name, "gauge", f"gauge {entry['name']}")
        lines.append(
            f"{name}{_prom_labels(entry.get('labels'))} "
            f"{_prom_number(entry['value'])}"
        )
    for entry in snap.get("histograms", ()):
        name = _prom_name(entry["name"])
        family(name, "histogram", f"histogram {entry['name']}")
        labels = dict(entry.get("labels") or {})
        cumulative = 0
        bounds = list(entry["buckets"]) + [float("inf")]
        for bound, count in zip(bounds, entry["counts"]):
            cumulative += count
            le = dict(labels, le=_prom_number(float(bound)))
            lines.append(
                f"{name}_bucket{_prom_labels(le)} {cumulative}"
            )
        label_str = _prom_labels(labels)
        lines.append(f"{name}_sum{label_str} {_prom_number(entry['sum'])}")
        lines.append(f"{name}_count{label_str} {entry['count']}")
    span_rollup: Dict[str, Dict[str, float]] = {}
    for s in snap.get("spans", ()):
        agg = span_rollup.setdefault(
            s["name"], {"count": 0, "total_ms": 0.0}
        )
        agg["count"] += 1
        agg["total_ms"] += s["dur_ns"] / 1e6
    if span_rollup:
        cname = PROM_PREFIX + "span_count"
        tname = PROM_PREFIX + "span_total_ms"
        family(cname, "gauge", "finished spans per name")
        family(tname, "gauge", "total span wall time per name (ms)")
        for span_name in sorted(span_rollup):
            agg = span_rollup[span_name]
            labels_str = _prom_labels({"name": span_name})
            lines.append(
                f"{cname}{labels_str} {_prom_number(agg['count'])}"
            )
            lines.append(
                f"{tname}{labels_str} {_prom_number(agg['total_ms'])}"
            )
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------

def chrome_events(snap: Optional[Dict[str, Any]] = None) -> List[dict]:
    """Convert a telemetry snapshot into Trace Event Format dicts."""
    snap = snap if snap is not None else snapshot()
    epoch = snap["meta"]["epoch_ns"]
    own_pid = snap["meta"]["pid"]
    events: List[dict] = []
    last_us = 0.0
    pids = {own_pid}
    for s in snap["spans"]:
        ts = max(0.0, (s["start_ns"] - epoch) / 1000.0)
        dur = s["dur_ns"] / 1000.0
        last_us = max(last_us, ts + dur)
        pids.add(s["pid"])
        events.append(
            {
                "name": s["name"],
                "cat": "pipeline",
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": s["pid"],
                "tid": s["tid"],
                "args": {
                    "cpu_ms": s["cpu_ns"] / 1e6,
                    "mem_peak_kb": s["mem_peak_kb"],
                    "depth": s["depth"],
                    "error": s["error"],
                    **(s.get("labels") or {}),
                },
            }
        )
    # Metric series as counter tracks, sampled once at the profile's end so
    # Perfetto shows the final value alongside the span timeline.
    for kind in ("counters", "gauges"):
        for entry in snap[kind]:
            events.append(
                {
                    "name": _series_key(entry),
                    "cat": "metrics",
                    "ph": "C",
                    "ts": last_us,
                    "pid": own_pid,
                    "args": {"value": entry["value"]},
                }
            )
    for entry in snap["histograms"]:
        events.append(
            {
                "name": _series_key(entry),
                "cat": "metrics",
                "ph": "C",
                "ts": last_us,
                "pid": own_pid,
                "args": {"count": entry["count"], "sum": entry["sum"]},
            }
        )
    for pid in sorted(pids):
        name = (
            "lttng-noise pipeline" if pid == own_pid else f"worker {pid}"
        )
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": name},
            }
        )
    return events


def write_chrome_trace(
    path: str, snap: Optional[Dict[str, Any]] = None
) -> int:
    """Write a Perfetto-loadable self-profile; returns the event count."""
    events = chrome_events(snap)
    payload = {"traceEvents": events, "displayTimeUnit": "ns"}
    with open(path, "w") as fp:
        json.dump(payload, fp)
    return len(events)


# ----------------------------------------------------------------------
# Compact aggregate (benchmark sidecars)
# ----------------------------------------------------------------------

def aggregate(snap: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Flatten a snapshot for embedding in benchmark JSON: scalar series
    keyed by ``name{labels}``, spans rolled up per name."""
    snap = snap if snap is not None else snapshot()
    spans: Dict[str, Dict[str, float]] = {}
    for s in snap["spans"]:
        agg = spans.setdefault(
            s["name"], {"count": 0, "total_ms": 0.0, "max_ms": 0.0}
        )
        agg["count"] += 1
        ms = s["dur_ns"] / 1e6
        agg["total_ms"] += ms
        agg["max_ms"] = max(agg["max_ms"], ms)
    return {
        "counters": {
            _series_key(e): e["value"] for e in snap["counters"]
        },
        "gauges": {_series_key(e): e["value"] for e in snap["gauges"]},
        "histograms": {
            _series_key(e): {"count": e["count"], "sum": e["sum"]}
            for e in snap["histograms"]
        },
        "spans": spans,
    }
