"""Pipeline spans: timed, nestable sections of the pipeline's own work.

A span measures one phase of the sim→trace→analyze stack — wall time
(``perf_counter_ns``), CPU time (``thread_time_ns``) and a peak-memory
reading (tracemalloc heap peak when tracing, ``ru_maxrss`` otherwise).
Spans nest through a per-thread stack, survive exceptions (the record is
emitted with ``error=True`` and the exception propagates), and work both as
context managers and as decorators::

    with obs.span("analysis", workload="AMG"):
        ...

    @obs.span("nesting")
    def build_activity_table(...): ...

Finished spans land in the registry's per-process buffer; the parallel
runner serializes worker buffers and merges them into the parent, so one
chrome-trace export shows every worker as its own process track.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.obs.metrics import REGISTRY, MetricsRegistry

_tls = threading.local()


def _stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def _peak_memory_kb() -> Optional[int]:
    """Best available peak-memory reading, in KiB."""
    import tracemalloc

    if tracemalloc.is_tracing():
        return tracemalloc.get_traced_memory()[1] // 1024
    try:
        import resource

        return int(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        )  # already KiB on Linux
    except (ImportError, ValueError):  # pragma: no cover - non-POSIX
        return None


@dataclass
class SpanRecord:
    """One finished span, as recorded in the registry buffer."""

    name: str
    start_ns: int          # absolute perf_counter_ns at entry
    dur_ns: int
    cpu_ns: int
    mem_peak_kb: Optional[int]
    depth: int
    pid: int
    tid: int
    labels: Dict[str, Any] = field(default_factory=dict)
    error: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "dur_ns": self.dur_ns,
            "cpu_ns": self.cpu_ns,
            "mem_peak_kb": self.mem_peak_kb,
            "depth": self.depth,
            "pid": self.pid,
            "tid": self.tid,
            "labels": self.labels,
            "error": self.error,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "SpanRecord":
        return SpanRecord(**data)


class span:
    """Context manager / decorator recording one :class:`SpanRecord`.

    Enabledness is sampled at ``__enter__``: a span opened while the
    registry is disabled costs two attribute reads and records nothing.
    """

    def __init__(
        self,
        name: str,
        registry: Optional[MetricsRegistry] = None,
        **labels: Any,
    ) -> None:
        self.name = name
        self.labels = labels
        self.registry = registry
        self._active = False
        self._t0 = 0
        self._c0 = 0
        self._depth = 0

    def __enter__(self) -> "span":
        reg = self.registry if self.registry is not None else REGISTRY
        self._reg = reg
        self._active = reg.enabled
        if not self._active:
            return self
        stack = _stack()
        self._depth = len(stack)
        stack.append(self)
        self._c0 = time.thread_time_ns()
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._active:
            return False
        dur = time.perf_counter_ns() - self._t0
        cpu = time.thread_time_ns() - self._c0
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # defensive: mis-nested exits
            stack.remove(self)
        self._reg.spans.append(
            SpanRecord(
                name=self.name,
                start_ns=self._t0,
                dur_ns=dur,
                cpu_ns=cpu,
                mem_peak_kb=_peak_memory_kb(),
                depth=self._depth,
                pid=os.getpid(),
                tid=threading.get_ident(),
                labels=dict(self.labels),
                error=exc_type is not None,
            )
        )
        return False  # never swallow exceptions

    # ------------------------------------------------------------------
    def __call__(self, fn):
        """Decorator form: a fresh span per invocation (re-entrant safe)."""

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with span(self.name, registry=self.registry, **self.labels):
                return fn(*args, **kwargs)

        return wrapper


def current_depth() -> int:
    """Nesting depth of the calling thread's open spans (testing aid)."""
    return len(_stack())
