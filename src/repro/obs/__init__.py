"""Self-observability for the sim→trace→analyze pipeline.

The paper's whole point is quantitative visibility into a system's
internals; this package gives the reproduction the same visibility into
*itself*: a process-local metrics registry (:mod:`repro.obs.metrics`),
nestable pipeline spans (:mod:`repro.obs.spans`), JSON-lines / Chrome-trace
exporters (:mod:`repro.obs.export`) and heartbeat progress reporting
(:mod:`repro.obs.progress`).

Disabled (the default) it costs one branch per instrumentation site::

    from repro import obs

    if obs.enabled():
        obs.counter("cache.hit").inc()

    with obs.span("analysis"):      # no-op when disabled
        ...

Enable with :func:`enable` (the CLI's ``--obs`` flag and the ``selftrace``
subcommand do), export with :func:`write_chrome_trace` /
:func:`write_jsonl`, and open the chrome export in ui.perfetto.dev.  See
``docs/observability.md`` for the metric catalog and span hierarchy.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NOOP,
    OBS_ENV,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from repro.obs.spans import SpanRecord, current_depth, span
from repro.obs.export import (
    aggregate,
    chrome_events,
    prometheus_text,
    snapshot,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.progress import Heartbeat
from repro.obs.sampler import (
    OBS_SAMPLE_ENV,
    OBS_SPILL_ENV,
    Sampler,
    maybe_start_worker_sampler,
    stop_worker_sampler,
)
from repro.obs.timeseries import (
    SampleRing,
    load_sample_dir,
    load_sample_file,
    merge_samples,
    sample_file_path,
    sample_files_in,
    series_from_samples,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "Heartbeat", "MetricsRegistry",
    "REGISTRY", "Sampler", "SampleRing", "SpanRecord", "aggregate",
    "chrome_events", "counter", "current_depth", "disable",
    "drain_snapshot", "enable", "enabled", "gauge", "histogram",
    "load_sample_dir", "load_sample_file", "maybe_start_worker_sampler",
    "merge_samples", "merge_snapshot", "prometheus_text", "reset",
    "sample_file_path", "sample_files_in", "series_from_samples",
    "snapshot", "span", "stop_worker_sampler", "write_chrome_trace",
    "write_jsonl", "DEFAULT_BUCKETS", "NOOP", "OBS_ENV",
    "OBS_SAMPLE_ENV", "OBS_SPILL_ENV",
]


def enabled() -> bool:
    """Is the global registry collecting?  The one-branch guard."""
    return REGISTRY.enabled


def enable(memory: bool = False) -> None:
    REGISTRY.enable(memory=memory)


def disable() -> None:
    REGISTRY.disable()


def reset() -> None:
    REGISTRY.reset()


def counter(name: str, **labels: Any) -> Counter:
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    return REGISTRY.gauge(name, **labels)


def histogram(name: str, buckets=None, **labels: Any) -> Histogram:
    return REGISTRY.histogram(name, buckets=buckets, **labels)


def drain_snapshot():
    return REGISTRY.drain_snapshot()


def merge_snapshot(snap) -> None:
    REGISTRY.merge_snapshot(snap)
