"""Process-local metrics registry: counters, gauges and histograms.

The pipeline observes itself with the same discipline the paper demands of
the kernel: always-on accounting cheap enough to leave enabled, exact
counters instead of sampled guesses, and honest loss/fallback bookkeeping.
The registry is dependency-free and process-local; cross-process runs (the
parallel runner's workers) each fill their own registry and the parent
merges the serialized snapshots.

Overhead discipline
-------------------
The registry has a global *no-op mode* (the default).  Instrumented call
sites guard with a single branch::

    if obs.enabled():
        obs.counter("cache.hit").inc()

and even unguarded calls are safe: a disabled registry hands out a shared
no-op metric, so nothing is allocated and no series appears.  Hot loops
(the simulator's per-event dispatch) carry no obs calls at all — they keep
plain integer tallies that boundary code reports when a run finishes.

Series identity is ``(name, sorted labels)``; labels are small string/int
scalars, in the spirit of Prometheus label sets.
"""

from __future__ import annotations

import bisect
import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

#: Environment flag: when set, the registry starts enabled.  ``enable()``
#: exports it so process-pool workers (spawn or fork) inherit obs mode.
OBS_ENV = "LTTNG_NOISE_OBS"

#: Default histogram bucket upper bounds (unitless; callers pick the unit).
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    float(10 ** e) for e in range(0, 10)
)

LabelItems = Tuple[Tuple[str, Any], ...]


def _label_items(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted(labels.items()))


def series_key(name: str, labels: Any) -> str:
    """Canonical flat key for one series: ``name{k=v,...}`` (sorted labels).

    The one spelling shared by exports, time-series samples and the
    ``obs diff`` comparison surface, so a metric keeps its identity from
    the instrumentation site all the way to a Prometheus scrape.
    """
    items = dict(labels) if labels else {}
    if not items:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(items.items()))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing tally."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-written value (occupancy, depth, rate...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class Histogram:
    """Bucketed distribution with exact count/sum/min/max."""

    __slots__ = (
        "name", "labels", "buckets", "counts", "count", "sum", "min", "max"
    )

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets or DEFAULT_BUCKETS))
        # counts[i] = observations <= buckets[i]; last slot is +inf overflow.
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value


class _NoopMetric:
    """Shared sink handed out while the registry is disabled."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def dec(self, n: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NOOP = _NoopMetric()


class MetricsRegistry:
    """All of one process's self-telemetry: metric series plus span buffer."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, str, LabelItems], Any] = {}
        #: Finished :class:`~repro.obs.spans.SpanRecord` objects, append-only.
        self.spans: List[Any] = []
        #: perf_counter_ns at enable time — the chrome-trace time origin.
        self.epoch_ns = time.perf_counter_ns()
        self._owns_tracemalloc = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self, memory: bool = False) -> None:
        """Turn collection on (idempotent).  ``memory=True`` also starts
        tracemalloc so spans report traced-heap peaks instead of ru_maxrss."""
        if not self.enabled:
            self.enabled = True
            self.epoch_ns = time.perf_counter_ns()
        os.environ[OBS_ENV] = "1"
        if memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._owns_tracemalloc = True

    def disable(self) -> None:
        """Turn collection off; series already recorded are kept."""
        self.enabled = False
        os.environ.pop(OBS_ENV, None)
        if self._owns_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._owns_tracemalloc = False

    def reset(self) -> None:
        """Drop every series and span (the enabled flag is untouched)."""
        with self._lock:
            self._series.clear()
            self.spans = []
            self.epoch_ns = time.perf_counter_ns()

    # ------------------------------------------------------------------
    # Series accessors (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: Any,
    ) -> Histogram:
        if not self.enabled:
            return NOOP  # type: ignore[return-value]
        key = ("histogram", name, _label_items(labels))
        metric = self._series.get(key)
        if metric is None:
            with self._lock:
                metric = self._series.setdefault(
                    key, Histogram(name, key[2], buckets)
                )
        return metric

    def _get(self, kind: str, cls, name: str, labels: Dict[str, Any]):
        if not self.enabled:
            return NOOP
        key = (kind, name, _label_items(labels))
        metric = self._series.get(key)
        if metric is None:
            with self._lock:
                metric = self._series.setdefault(key, cls(name, key[2]))
        return metric

    def series(self, kind: Optional[str] = None) -> List[Any]:
        """All live series, optionally of one kind, in creation order.

        Snapshots under the registry lock: pool workers create series
        concurrently via ``_get``, and iterating the live dict races
        with those inserts (``dictionary changed size during
        iteration``)."""
        with self._lock:
            items = list(self._series.items())
        return [m for (k, _, _), m in items if kind is None or k == kind]

    def scalar_values(self) -> Dict[str, float]:
        """Every series as one scalar per flat key — the sampler's view.

        Counters and gauges contribute their value under
        :func:`series_key`; histograms contribute ``key:count`` and
        ``key:sum`` (the two scalars that evolve monotonically enough to
        chart over time).  Spans are deliberately excluded: sampling is
        O(series), not O(history).
        """
        out: Dict[str, float] = {}
        with self._lock:
            for (kind, name, labels), m in self._series.items():
                key = series_key(name, labels)
                if kind == "histogram":
                    out[key + ":count"] = m.count
                    out[key + ":sum"] = m.sum
                else:
                    out[key] = m.value
        return out

    # ------------------------------------------------------------------
    # Snapshot / merge (the cross-process protocol)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The registry as plain JSON-able data."""
        import repro

        counters = []
        gauges = []
        histograms = []
        with self._lock:
            for (kind, name, labels), m in self._series.items():
                entry = {"name": name, "labels": dict(labels)}
                if kind == "counter":
                    entry["value"] = m.value
                    counters.append(entry)
                elif kind == "gauge":
                    entry["value"] = m.value
                    gauges.append(entry)
                else:
                    entry.update(
                        buckets=list(m.buckets),
                        counts=list(m.counts),
                        count=m.count,
                        sum=m.sum,
                        min=m.min,
                        max=m.max,
                    )
                    histograms.append(entry)
            spans = [s.to_dict() for s in self.spans]
        return {
            "meta": {
                "pid": os.getpid(),
                "epoch_ns": self.epoch_ns,
                "version": repro.__version__,
            },
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": spans,
        }

    def drain_snapshot(self) -> Dict[str, Any]:
        """Snapshot, then reset — the per-unit-of-work worker protocol."""
        snap = self.snapshot()
        epoch = self.epoch_ns
        self.reset()
        self.epoch_ns = epoch  # keep one time origin per process
        return snap

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold another process's snapshot into this registry.

        Counters and histogram cells add; gauges last-write-win; spans are
        appended verbatim (they carry their own pid, so a merged chrome
        export shows each worker as its own process track).
        """
        from repro.obs.spans import SpanRecord

        was_enabled = self.enabled
        self.enabled = True  # allow get-or-create during the merge
        try:
            for entry in snap.get("counters", ()):
                self.counter(entry["name"], **entry["labels"]).inc(
                    entry["value"]
                )
            for entry in snap.get("gauges", ()):
                self.gauge(entry["name"], **entry["labels"]).set(
                    entry["value"]
                )
            for entry in snap.get("histograms", ()):
                hist = self.histogram(
                    entry["name"],
                    buckets=tuple(entry["buckets"]),
                    **entry["labels"],
                )
                if list(hist.buckets) == list(entry["buckets"]):
                    for i, c in enumerate(entry["counts"]):
                        hist.counts[i] += c
                else:  # bucket mismatch: keep totals honest, lose shape
                    hist.counts[-1] += entry["count"]
                hist.count += entry["count"]
                hist.sum += entry["sum"]
                for bound, pick in ((entry["min"], min), (entry["max"], max)):
                    if bound is None:
                        continue
                    attr = "min" if pick is min else "max"
                    cur = getattr(hist, attr)
                    setattr(
                        hist, attr, bound if cur is None else pick(cur, bound)
                    )
            for entry in snap.get("spans", ()):
                self.spans.append(SpanRecord.from_dict(entry))
        finally:
            self.enabled = was_enabled


#: The process-global default registry.  Starts disabled unless a parent
#: process exported the obs environment flag before spawning us.
REGISTRY = MetricsRegistry(enabled=bool(os.environ.get(OBS_ENV)))
