"""Heartbeat/progress reporting for long sweeps.

A :class:`Heartbeat` throttles progress lines to at most one per interval
(so a 10k-run sweep doesn't scroll 10k lines), always prints the final
summary, and — when obs is enabled — keeps the same information as metric
series (``progress.units_done`` etc.) so an ``--obs`` export records how a
long sweep advanced even if nobody watched the terminal.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

from repro.obs.metrics import REGISTRY, MetricsRegistry


class Heartbeat:
    """Rate-limited progress reporter for a known or unknown total."""

    def __init__(
        self,
        label: str,
        total: Optional[int] = None,
        interval_s: float = 2.0,
        stream: Optional[TextIO] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.label = label
        self.total = total
        self.interval_s = interval_s
        self.stream = stream if stream is not None else sys.stderr
        self.registry = registry if registry is not None else REGISTRY
        self.done = 0
        self.t0 = time.perf_counter()
        self._last_emit = -float("inf")

    # ------------------------------------------------------------------
    def tick(self, done: Optional[int] = None, message: str = "") -> bool:
        """Advance progress; prints if the interval elapsed.  Returns
        whether a line was emitted."""
        self.done = self.done + 1 if done is None else done
        reg = self.registry
        now = time.perf_counter()
        if reg.enabled:
            reg.gauge("progress.units_done", label=self.label).set(self.done)
            reg.counter("progress.heartbeats", label=self.label).inc()
            elapsed = now - self.t0
            if elapsed > 0:
                reg.gauge("progress.rate", label=self.label).set(
                    self.done / elapsed
                )
        if now - self._last_emit < self.interval_s:
            return False
        self._last_emit = now
        self._emit(message)
        return True

    def finish(self, message: str = "") -> None:
        """Always prints the closing line with elapsed wall time."""
        elapsed = time.perf_counter() - self.t0
        tail = f" {message}" if message else ""
        print(
            f"[{self.label}] done: {self._frac()} in {elapsed:.2f}s{tail}",
            file=self.stream,
        )
        if self.registry.enabled:
            # Final truth even when no tick ever crossed the emit interval
            # (or tick was never called at all).
            self.registry.gauge(
                "progress.units_done", label=self.label
            ).set(self.done)
            self.registry.gauge(
                "progress.elapsed_s", label=self.label
            ).set(elapsed)
            if elapsed > 0:
                self.registry.gauge("progress.rate", label=self.label).set(
                    self.done / elapsed
                )

    # ------------------------------------------------------------------
    def _frac(self) -> str:
        if self.total is not None:
            return f"{self.done}/{self.total}"
        return str(self.done)

    def _emit(self, message: str) -> None:
        elapsed = time.perf_counter() - self.t0
        rate = self.done / elapsed if elapsed > 0 else 0.0
        tail = f" {message}" if message else ""
        print(
            f"[{self.label}] {self._frac()} ({rate:.1f}/s){tail}",
            file=self.stream,
        )
