"""Cluster-scale tracing (paper Section III-B).

Tracing every node of a large machine "faces the challenge of collecting
and storing a very large amount of data at run-time".  The paper proposes
two mitigations, both implemented here:

* **subset tracing** — "enable tracing only on a statistically significant
  subset of the cluster's nodes", since OS noise is inherently redundant
  across nodes: :class:`ClusterStudy` runs many independent node
  simulations and quantifies how fast a sampled subset's noise profile
  converges to the full cluster's;
* **run-time compression** — the binary trace format's per-packet zlib mode
  (:mod:`repro.tracing.ctf`); :meth:`ClusterStudy.volume_bytes` accounts the
  data-volume saving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.analysis import NoiseAnalysis
from repro.core.model import BREAKDOWN_CATEGORIES, NoiseCategory, TraceMeta
from repro.util.rng import RngLike, make_rng


@dataclass
class NodeRun:
    """One traced node of the cluster."""

    index: int
    seed: int
    analysis: NoiseAnalysis
    plain_bytes: int
    compressed_bytes: int


class ClusterStudy:
    """A set of independently-traced nodes running the same application."""

    def __init__(self, runs: List[NodeRun]) -> None:
        if not runs:
            raise ValueError("a cluster study needs at least one node")
        self.runs = runs

    # ------------------------------------------------------------------
    @staticmethod
    def run(
        workload_factory: Callable[[], "object"],
        nnodes: int,
        duration_ns: int,
        base_seed: int = 0,
        ncpus: int = 8,
    ) -> "ClusterStudy":
        """Simulate ``nnodes`` traced nodes (distinct seeds = distinct
        nodes; the workload is the same, as on a real SPMD cluster)."""
        if nnodes <= 0:
            raise ValueError("nnodes must be positive")
        runs: List[NodeRun] = []
        for i in range(nnodes):
            workload = workload_factory()
            node, trace = workload.run_traced(
                duration_ns, seed=base_seed + i, ncpus=ncpus
            )
            analysis = NoiseAnalysis(trace, meta=TraceMeta.from_node(node))
            runs.append(
                NodeRun(
                    index=i,
                    seed=base_seed + i,
                    analysis=analysis,
                    plain_bytes=len(trace.to_bytes(compress=False)),
                    compressed_bytes=len(trace.to_bytes(compress=True)),
                )
            )
        return ClusterStudy(runs)

    # ------------------------------------------------------------------
    # Noise-profile estimation
    # ------------------------------------------------------------------
    def breakdown(
        self, indices: Optional[Sequence[int]] = None
    ) -> Dict[NoiseCategory, float]:
        """Cluster (or subset) noise breakdown: total ns per category over
        the selected nodes, normalized."""
        chosen = self.runs if indices is None else [self.runs[i] for i in indices]
        totals: Dict[NoiseCategory, float] = {c: 0.0 for c in BREAKDOWN_CATEGORIES}
        for run in chosen:
            for category, ns in run.analysis.breakdown_ns().items():
                totals[category] = totals.get(category, 0.0) + ns
        grand = sum(totals.values())
        if grand == 0:
            return {c: 0.0 for c in totals}
        return {c: v / grand for c, v in totals.items()}

    def noise_fraction(self, indices: Optional[Sequence[int]] = None) -> float:
        chosen = self.runs if indices is None else [self.runs[i] for i in indices]
        return float(np.mean([r.analysis.noise_fraction() for r in chosen]))

    def subset_error(
        self, subset_size: int, trials: int = 20, rng: RngLike = 0
    ) -> float:
        """Mean L1 distance between a random subset's breakdown and the
        full cluster's, over random subsets."""
        if not 1 <= subset_size <= len(self.runs):
            raise ValueError("subset size out of range")
        generator = make_rng(rng)
        full = self.breakdown()
        errors = []
        for _ in range(trials):
            picked = generator.choice(
                len(self.runs), size=subset_size, replace=False
            )
            sub = self.breakdown(sorted(int(i) for i in picked))
            errors.append(
                sum(abs(sub[c] - full[c]) for c in BREAKDOWN_CATEGORIES)
            )
        return float(np.mean(errors))

    def convergence(
        self, subset_sizes: Sequence[int], trials: int = 20, rng: RngLike = 0
    ) -> Dict[int, float]:
        """Subset-size -> mean breakdown error: the §III-B claim made
        quantitative (error shrinks fast; a small subset suffices)."""
        return {
            int(k): self.subset_error(int(k), trials=trials, rng=rng)
            for k in subset_sizes
        }

    # ------------------------------------------------------------------
    # Co-scheduling analysis (Jones et al.: synchronize OS activity
    # across nodes so collectives pay the mean, not the max)
    # ------------------------------------------------------------------
    def coscheduling_benefit(
        self, granularity_ns: int, cpu: Optional[int] = 0
    ) -> "Dict[str, float]":
        """Per-interval barrier penalty, unsynchronized vs gang-scheduled.

        With independent nodes, a collective pays ``max`` over nodes of
        each interval's noise; if OS activities were aligned across nodes
        (the related-work co-scheduling idea), the heavy intervals
        coincide and the max collapses toward a single node's profile.
        Returns mean per-interval penalties and their ratio.
        """
        timelines = []
        n = None
        for run in self.runs:
            timeline = run.analysis.noise_timeline(granularity_ns, cpu=cpu)
            n = len(timeline) if n is None else min(n, len(timeline))
            timelines.append(timeline)
        if not n:
            raise ValueError("no intervals at this granularity")
        matrix = np.stack([t[:n] for t in timelines])
        unsync = float(matrix.max(axis=0).mean())
        # Gang scheduling best case: align each node's heavy intervals.
        aligned = np.sort(matrix, axis=1)[:, ::-1]
        sync = float(aligned.max(axis=0).mean())
        return {
            "penalty_unsync_ns": unsync,
            "penalty_cosched_ns": sync,
            "benefit_ratio": unsync / sync if sync else 1.0,
        }

    # ------------------------------------------------------------------
    # Data-volume accounting
    # ------------------------------------------------------------------
    def volume_bytes(self, compressed: bool = False) -> int:
        if compressed:
            return sum(r.compressed_bytes for r in self.runs)
        return sum(r.plain_bytes for r in self.runs)

    def compression_ratio(self) -> float:
        plain = self.volume_bytes(compressed=False)
        packed = self.volume_bytes(compressed=True)
        return plain / packed if packed else 1.0
