"""Noise-signature disambiguation (Section V).

Indirect measurement collapses every interruption to a single duration; two
very different kernel causes can produce the same number.  The paper gives
two case studies, both reproduced here:

* **qualitatively similar activities** (Fig. 10): a page fault of 2913 ns
  next to a timer interrupt + ``run_timer_softirq`` totalling 2902 ns — an
  11 ns difference no micro-benchmark can split, while the trace names both;
* **composed events** (Fig. 9): a page fault landing in the same FTQ quantum
  as a periodic timer tick makes that quantum's spike look like a different
  (aperiodic) phenomenon; the trace shows two separate interruptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.model import Interruption


@dataclass(frozen=True)
class AmbiguousPair:
    """Two interruptions indistinguishable by duration alone."""

    first: Interruption
    second: Interruption

    @property
    def duration_gap_ns(self) -> int:
        return abs(self.first.noise_ns - self.second.noise_ns)

    def explain(self) -> str:
        a, b = self.first, self.second
        return (
            f"two interruptions of ~{a.noise_ns} ns vs ~{b.noise_ns} ns "
            f"(gap {self.duration_gap_ns} ns) have different causes: "
            f"{' + '.join(a.signature())} vs {' + '.join(b.signature())}"
        )


def find_ambiguous_pairs(
    interruptions: Sequence[Interruption],
    tolerance_ns: int = 100,
    max_pairs: int = 50,
    require_different_signature: bool = True,
) -> List[AmbiguousPair]:
    """Find interruption pairs with near-equal durations but (by default)
    different compositions — the cases indirect tools cannot distinguish."""
    if tolerance_ns < 0:
        raise ValueError("tolerance must be non-negative")
    # noise_ns is a sum over component activities — compute it once per
    # interruption instead of on every comparison in the scan below.
    by_duration = sorted(
        ((g.noise_ns, g) for g in interruptions), key=lambda pair: pair[0]
    )
    pairs: List[AmbiguousPair] = []
    for i in range(len(by_duration) - 1):
        noise_a, a = by_duration[i]
        j = i + 1
        while j < len(by_duration):
            noise_b, b = by_duration[j]
            if noise_b - noise_a > tolerance_ns:
                break
            if not require_different_signature or _signatures_differ(a, b):
                pairs.append(AmbiguousPair(a, b))
                if len(pairs) >= max_pairs:
                    return pairs
            j += 1
    return pairs


def _signatures_differ(a: Interruption, b: Interruption) -> bool:
    return set(a.signature()) != set(b.signature())


@dataclass(frozen=True)
class CompositionFinding:
    """An interruption (or quantum) composed of unrelated events."""

    interruption: Interruption
    components: Tuple[str, ...]

    def explain(self) -> str:
        return (
            f"the spike at t={self.interruption.start} is not one event: "
            f"it is {' + '.join(self.components)} "
            f"({self.interruption.noise_ns} ns total)"
        )


def find_composed(
    interruptions: Sequence[Interruption],
    min_components: int = 2,
    distinct_categories: bool = True,
) -> List[CompositionFinding]:
    """Interruptions made of multiple (by default cross-category) events.

    These are the cases where FTQ's per-quantum aggregation misleads: a page
    fault plus a timer tick in one quantum looks like a single anomalous
    event (Fig. 9a) until the trace splits it (Fig. 9b).
    """
    out: List[CompositionFinding] = []
    for g in interruptions:
        names = g.signature()
        if len(names) < min_components:
            continue
        if distinct_categories:
            categories = {a.category for a in g.activities}
            if len(categories) < 2:
                continue
        out.append(CompositionFinding(g, names))
    return out


def quantum_composition(
    interruptions: Sequence[Interruption],
    t0: int,
    quantum_ns: int,
    index: int,
) -> List[Interruption]:
    """All interruptions inside FTQ quantum ``index`` — what actually made
    up one spike of the FTQ chart."""
    begin = t0 + index * quantum_ns
    end = begin + quantum_ns
    return [g for g in interruptions if begin <= g.start < end]
