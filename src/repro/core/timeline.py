"""Task-state timelines: when was each task running / runnable / blocked.

The noise classification rule ("we do not consider a kernel interruption as
noise if, when it occurs, a process is blocked waiting for communication")
rests on knowing each task's scheduler state over time.  This module makes
that observable a first-class object reconstructed from ``task_state`` and
``sched_switch`` point events: per-task state intervals, waiting-time
accounting, and CPU-occupancy summaries — the same data Paraver's state view
renders.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.model import TraceMeta
from repro.simkernel.task import TaskState
from repro.tracing.events import Ev


@dataclass(frozen=True)
class StateInterval:
    """One contiguous interval of a task in one scheduler state."""

    pid: int
    state: TaskState
    start: int
    end: int

    @property
    def duration_ns(self) -> int:
        return self.end - self.start


class TaskTimeline:
    """State history of every task in a trace."""

    def __init__(
        self,
        records: np.ndarray,
        meta: Optional[TraceMeta] = None,
        end_ts: Optional[int] = None,
    ) -> None:
        self.meta = meta if meta is not None else TraceMeta()
        if end_ts is None:
            end_ts = int(records["time"].max()) if len(records) else 0
        self.end_ts = int(end_ts)

        # Columnar pairing: keep task_state records in stable time order,
        # regroup by pid, and zip each pid's consecutive events into
        # intervals.  A final open interval extends to end_ts.
        sel = records[records["event"] == int(Ev.TASK_STATE)]
        order = np.argsort(sel["time"], kind="stable")
        times = sel["time"][order].astype(np.int64)
        args = sel["arg"][order]
        pids = (args >> np.uint64(8)).astype(np.int64)
        states = (args & np.uint64(0xFF)).astype(np.int64)

        intervals: Dict[int, List[StateInterval]] = {}
        if len(times):
            porder = np.argsort(pids, kind="stable")
            sp = pids[porder]
            st = times[porder]
            ss = states[porder]
            same_pid = sp[1:] == sp[:-1]
            pair = np.flatnonzero(same_pid & (st[1:] > st[:-1]))
            last = np.append(np.flatnonzero(~same_pid), len(sp) - 1)
            for i in pair.tolist():
                pid = int(sp[i])
                intervals.setdefault(pid, []).append(
                    StateInterval(
                        pid, TaskState(int(ss[i])), int(st[i]), int(st[i + 1])
                    )
                )
            for i in last.tolist():
                pid = int(sp[i])
                if self.end_ts > st[i]:
                    intervals.setdefault(pid, []).append(
                        StateInterval(
                            pid,
                            TaskState(int(ss[i])),
                            int(st[i]),
                            self.end_ts,
                        )
                    )
        self._intervals = intervals
        self._starts: Dict[int, List[int]] = {
            pid: [iv.start for iv in ivs] for pid, ivs in intervals.items()
        }

    # ------------------------------------------------------------------
    def pids(self) -> List[int]:
        return sorted(self._intervals)

    def intervals(
        self, pid: int, state: Optional[TaskState] = None
    ) -> List[StateInterval]:
        """All (or one state's) intervals of a task, time-ordered."""
        out = self._intervals.get(pid, [])
        if state is None:
            return list(out)
        return [iv for iv in out if iv.state == state]

    def state_at(self, pid: int, time_ns: int) -> Optional[TaskState]:
        """The task's state at an instant (None before its first event)."""
        starts = self._starts.get(pid)
        if not starts:
            return None
        idx = bisect.bisect_right(starts, time_ns) - 1
        if idx < 0:
            return None
        interval = self._intervals[pid][idx]
        if interval.start <= time_ns < interval.end:
            return interval.state
        # Past the last interval: the last known state persists.
        if time_ns >= interval.end and interval is self._intervals[pid][-1]:
            return interval.state
        return None

    def time_in_state(self, pid: int, state: TaskState) -> int:
        """Total nanoseconds the task spent in a state."""
        return sum(iv.duration_ns for iv in self.intervals(pid, state))

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def occupancy(self, pid: int) -> Dict[TaskState, float]:
        """Fraction of the observed window per state."""
        total = sum(iv.duration_ns for iv in self._intervals.get(pid, []))
        if total == 0:
            return {}
        out: Dict[TaskState, float] = {}
        for iv in self._intervals[pid]:
            out[iv.state] = out.get(iv.state, 0.0) + iv.duration_ns / total
        return out

    def wait_times(self, pid: int) -> np.ndarray:
        """Durations of RUNNABLE episodes: how long the task waited for a
        CPU after being displaced or woken (scheduler-latency view)."""
        return np.array(
            [iv.duration_ns for iv in self.intervals(pid, TaskState.RUNNABLE)],
            dtype=np.int64,
        )

    def blocked_times(self, pid: int) -> np.ndarray:
        """Durations of BLOCKED episodes (I/O and communication waits)."""
        return np.array(
            [iv.duration_ns for iv in self.intervals(pid, TaskState.BLOCKED)],
            dtype=np.int64,
        )

    def summary(self) -> Dict[int, Dict[str, float]]:
        """Per-application-task digest used by reports.

        Occupancy fractions are floats; episode counts and nanosecond
        sums stay int64-exact (NSX rules) — ``mean_wait_ns`` is the floor
        of the exact integer quotient, never a lossy float mean.
        """
        out: Dict[int, Dict[str, float]] = {}
        for pid in self.pids():
            if not self.meta.is_application(pid):
                continue
            occ = self.occupancy(pid)
            waits = self.wait_times(pid)
            total_wait = int(waits.sum())
            out[pid] = {
                "running": occ.get(TaskState.RUNNING, 0.0),
                "runnable": occ.get(TaskState.RUNNABLE, 0.0),
                "blocked": occ.get(TaskState.BLOCKED, 0.0),
                "wait_episodes": int(waits.size),
                "total_wait_ns": total_wait,
                "mean_wait_ns": total_wait // int(waits.size)
                if waits.size
                else 0,
            }
        return out
