"""Noise cloning: fit an empirical noise model from a trace, replay it.

Bridges the paper's two methodological worlds — measurement (lttng-noise)
and injection (Ferreira et al.) — in one loop:

1. **fit** (:func:`fit_noise_profile`): from an analyzed trace, extract one
   source per noise event type: its per-CPU rate and the *empirical*
   duration distribution (no parametric smoothing);
2. **replay** (:meth:`NoiseProfile.replay_on`): drive injectors from those
   sources on any node — a clean one, a different machine shape, a
   what-if configuration — reproducing the measured noise's budget and
   granularity without the original workload.

Use cases: subjecting a *new* application to a *measured* OS's noise;
sensitivity studies against real (not synthetic) profiles; compressing a
giant trace into a small replayable model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.analysis import NoiseAnalysis
from repro.simkernel.distributions import Empirical
from repro.simkernel.injection import InjectionSpec, NoiseInjector
from repro.util.units import SEC


@dataclass(frozen=True)
class NoiseSource:
    """One fitted noise source (one event type)."""

    name: str
    tag: int
    rate_per_cpu_sec: float
    durations_ns: np.ndarray

    @property
    def mean_ns(self) -> float:
        return float(self.durations_ns.mean())

    @property
    def budget_ns_per_cpu_sec(self) -> float:
        return self.rate_per_cpu_sec * self.mean_ns

    def describe(self) -> str:
        return (
            f"{self.name:24s} {self.rate_per_cpu_sec:8.1f} ev/s  "
            f"x {self.mean_ns:8.0f} ns = "
            f"{self.budget_ns_per_cpu_sec:10.0f} ns/cpu-s"
        )


class NoiseProfile:
    """A replayable set of fitted noise sources."""

    def __init__(self, sources: List[NoiseSource], ncpus: int) -> None:
        self.sources = sources
        self.ncpus = ncpus

    # ------------------------------------------------------------------
    @property
    def total_budget_ns_per_cpu_sec(self) -> float:
        return sum(s.budget_ns_per_cpu_sec for s in self.sources)

    def source(self, name: str) -> Optional[NoiseSource]:
        for s in self.sources:
            if s.name == name:
                return s
        return None

    def describe(self) -> str:
        lines = [s.describe() for s in self.sources]
        lines.append(
            f"{'total':24s} {'':>8s}       {'':>8s}      "
            f"{self.total_budget_ns_per_cpu_sec:10.0f} ns/cpu-s"
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def replay_on(
        self, node, cpus: Optional[Sequence[int]] = None
    ) -> List[NoiseInjector]:
        """Install one Poisson injector per source on a (not yet started)
        node.  Each source keeps its rate, its empirical durations, and a
        distinct ``tag`` so the replayed trace remains source-attributable."""
        injectors = []
        targets = list(cpus) if cpus is not None else None
        for source in self.sources:
            spec = InjectionSpec(
                pattern="poisson",
                rate_per_sec=source.rate_per_cpu_sec,
                duration=Empirical(source.durations_ns),
                cpus=targets,
                tag=source.tag,
            )
            injectors.append(NoiseInjector(node, spec).start())
        return injectors

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        payload: Dict[str, np.ndarray] = {
            "ncpus": np.array([self.ncpus]),
            "names": np.array([s.name for s in self.sources]),
            "tags": np.array([s.tag for s in self.sources]),
            "rates": np.array([s.rate_per_cpu_sec for s in self.sources]),
        }
        for i, s in enumerate(self.sources):
            payload[f"durations_{i}"] = s.durations_ns
        np.savez_compressed(path, **payload)

    @staticmethod
    def load(path: str) -> "NoiseProfile":
        data = np.load(path, allow_pickle=False)
        names = [str(n) for n in data["names"]]
        sources = [
            NoiseSource(
                name=names[i],
                tag=int(data["tags"][i]),
                rate_per_cpu_sec=float(data["rates"][i]),
                durations_ns=data[f"durations_{i}"],
            )
            for i in range(len(names))
        ]
        return NoiseProfile(sources, ncpus=int(data["ncpus"][0]))


def fit_noise_profile(
    analysis: NoiseAnalysis, min_events: int = 5
) -> NoiseProfile:
    """Extract a replayable noise model from an analyzed trace.

    One source per noise event type with at least ``min_events``
    occurrences; rates are per CPU-second, durations are the observed self
    times (bootstrap-resampled at replay).
    """
    if min_events < 1:
        raise ValueError("min_events must be positive")
    d = analysis.table.data
    m = d["is_noise"] & ~d["truncated"]
    names = analysis.table.names()[m]
    self_ns = d["self_ns"][m]
    span_cpu_sec = analysis.span_ns / SEC
    sources = []
    tag = 1
    if len(names):
        uniq, inv = np.unique(names, return_inverse=True)
        order = np.argsort(inv, kind="stable")
        counts = np.bincount(inv, minlength=len(uniq))
        chunks = np.split(self_ns[order], np.cumsum(counts)[:-1])
        for name, durations in zip(uniq.tolist(), chunks):
            if len(durations) < min_events:
                continue
            sources.append(
                NoiseSource(
                    name=name,
                    tag=tag,
                    rate_per_cpu_sec=len(durations)
                    / span_cpu_sec
                    / analysis.ncpus,
                    durations_ns=durations.astype(np.int64),
                )
            )
            tag += 1
    return NoiseProfile(sources, ncpus=analysis.ncpus)
