"""The Synthetic OS Noise Chart (Figures 1b/1d, 9b, 10).

FTQ perceives one opaque "spike" per interruption; the trace decomposes each
spike into its kernel components.  This module groups temporally-adjacent
noise activities into :class:`~repro.core.model.Interruption` objects and
produces the chart series: one ``(time, noise_ns, composition)`` point per
interruption.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.analysis import NoiseAnalysis
from repro.core.model import Activity, Interruption


def build_interruptions(
    activities: Sequence[Activity],
    merge_gap_ns: int = 300,
    cpu: Optional[int] = None,
    noise_only: bool = True,
) -> List[Interruption]:
    """Group activities into interruptions.

    Activities whose start lies within ``merge_gap_ns`` of the group's
    current end belong to the same interruption — a timer interrupt, the
    ``run_timer_softirq`` it triggers, the two halves of ``schedule()`` and
    the daemon burst in between are back-to-back and form one interruption,
    exactly as FTQ perceives them.
    """
    if merge_gap_ns < 0:
        raise ValueError("merge gap must be non-negative")
    per_cpu: Dict[int, List[Activity]] = {}
    for act in activities:
        if noise_only and not act.is_noise:
            continue
        if cpu is not None and act.cpu != cpu:
            continue
        per_cpu.setdefault(act.cpu, []).append(act)

    out: List[Interruption] = []
    for cpu_index, acts in per_cpu.items():
        acts.sort(key=lambda a: (a.start, a.depth))
        group: Optional[Interruption] = None
        for act in acts:
            if group is None or act.start > group.end + merge_gap_ns:
                group = Interruption(
                    cpu=cpu_index, start=act.start, end=act.end
                )
                out.append(group)
            group.activities.append(act)
            group.end = max(group.end, act.end)
    out.sort(key=lambda g: (g.start, g.cpu))
    return out


class SyntheticNoiseChart:
    """The per-interruption noise chart for one CPU (or the whole node)."""

    def __init__(
        self,
        analysis: NoiseAnalysis,
        cpu: Optional[int] = None,
        merge_gap_ns: int = 300,
        noise_only: bool = True,
    ) -> None:
        """``noise_only=False`` also shows excluded activities (syscalls,
        the tracer daemon's own bursts) — useful when explaining a spike an
        indirect tool like FTQ perceives but the noise accounting excludes."""
        self.analysis = analysis
        self.cpu = cpu
        self.interruptions = build_interruptions(
            analysis.activities,
            merge_gap_ns=merge_gap_ns,
            cpu=cpu,
            noise_only=noise_only,
        )

    # ------------------------------------------------------------------
    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, noise_ns)`` arrays — the chart's x/y values."""
        times = np.array([g.start for g in self.interruptions], dtype=np.int64)
        noise = np.array([g.noise_ns for g in self.interruptions], dtype=np.int64)
        return times, noise

    def window(self, t0: int, t1: int) -> List[Interruption]:
        """Interruptions inside a time window (the paper's zoom views)."""
        return [g for g in self.interruptions if t0 <= g.start < t1]

    def at(self, time_ns: int, slack_ns: int = 0) -> Optional[Interruption]:
        """The interruption covering (or nearest within slack of) a time."""
        best = None
        best_gap = None
        for g in self.interruptions:
            if g.start - slack_ns <= time_ns <= g.end + slack_ns:
                gap = 0 if g.start <= time_ns <= g.end else min(
                    abs(g.start - time_ns), abs(g.end - time_ns)
                )
                if best is None or gap < best_gap:
                    best, best_gap = g, gap
        return best

    def largest(self, n: int = 10) -> List[Interruption]:
        return sorted(
            self.interruptions, key=lambda g: g.noise_ns, reverse=True
        )[:n]

    def total_noise_ns(self) -> int:
        return sum(g.noise_ns for g in self.interruptions)

    def describe_window(self, t0: int, t1: int) -> str:
        """Text rendering of a zoomed window (Fig. 1d / Fig. 10 style)."""
        lines = []
        for g in self.window(t0, t1):
            lines.append(g.describe())
        return "\n".join(lines)
