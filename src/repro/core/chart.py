"""The Synthetic OS Noise Chart (Figures 1b/1d, 9b, 10).

FTQ perceives one opaque "spike" per interruption; the trace decomposes each
spike into its kernel components.  This module groups temporally-adjacent
noise activities into :class:`~repro.core.model.Interruption` objects and
produces the chart series: one ``(time, noise_ns, composition)`` point per
interruption.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.analysis import NoiseAnalysis
from repro.core.model import Activity, ActivityTable, Interruption


def build_interruptions(
    activities: Union[ActivityTable, Sequence[Activity]],
    merge_gap_ns: int = 300,
    cpu: Optional[int] = None,
    noise_only: bool = True,
) -> List[Interruption]:
    """Group activities into interruptions.

    Activities whose start lies within ``merge_gap_ns`` of the group's
    current end belong to the same interruption — a timer interrupt, the
    ``run_timer_softirq`` it triggers, the two halves of ``schedule()`` and
    the daemon burst in between are back-to-back and form one interruption,
    exactly as FTQ perceives them.

    Accepts an :class:`ActivityTable` (grouping runs columnar: a per-CPU
    running-max over end times finds group boundaries) or a plain activity
    sequence.
    """
    if merge_gap_ns < 0:
        raise ValueError("merge gap must be non-negative")
    if isinstance(activities, ActivityTable):
        return _build_interruptions_table(
            activities, merge_gap_ns, cpu, noise_only
        )
    per_cpu: Dict[int, List[Activity]] = {}
    for act in activities:
        if noise_only and not act.is_noise:
            continue
        if cpu is not None and act.cpu != cpu:
            continue
        per_cpu.setdefault(act.cpu, []).append(act)

    out: List[Interruption] = []
    for cpu_index, acts in per_cpu.items():
        acts.sort(key=lambda a: (a.start, a.depth))
        group: Optional[Interruption] = None
        for act in acts:
            if group is None or act.start > group.end + merge_gap_ns:
                group = Interruption(
                    cpu=cpu_index, start=act.start, end=act.end
                )
                out.append(group)
            group.activities.append(act)
            group.end = max(group.end, act.end)
    out.sort(key=lambda g: (g.start, g.cpu))
    return out


def _build_interruptions_table(
    table: ActivityTable,
    merge_gap_ns: int,
    cpu: Optional[int],
    noise_only: bool,
) -> List[Interruption]:
    m = np.ones(len(table), dtype=bool)
    if noise_only:
        m &= table.data["is_noise"]
    if cpu is not None:
        m &= table.data["cpu"] == cpu
    sub = table.take(m)
    if not len(sub):
        return []
    # Per-CPU segments ordered by (start, depth), as the object path sorts.
    d = sub.data
    order = np.lexsort((d["depth"], d["start"], d["cpu"]))
    sub = sub.take(order)
    d = sub.data
    cpus = d["cpu"]
    starts = d["start"].astype(np.int64)
    ends = d["end"].astype(np.int64)
    # Running max of end times, restarted at each CPU segment.
    cummax = np.empty(len(ends), dtype=np.int64)
    seg_heads = np.flatnonzero(
        np.concatenate([[True], cpus[1:] != cpus[:-1]])
    )
    for s, e in zip(seg_heads, np.append(seg_heads[1:], len(ends))):
        cummax[s:e] = np.maximum.accumulate(ends[s:e])
    new_group = np.ones(len(d), dtype=bool)
    new_group[1:] = (starts[1:] > cummax[:-1] + merge_gap_ns) | (
        cpus[1:] != cpus[:-1]
    )
    heads = np.flatnonzero(new_group)
    group_end = np.maximum.reduceat(ends, heads)
    rows = sub.rows()
    bounds = np.append(heads, len(rows))
    out = [
        Interruption(
            cpu=int(cpus[heads[g]]),
            start=int(starts[heads[g]]),
            end=int(group_end[g]),
            activities=rows[bounds[g] : bounds[g + 1]],
        )
        for g in range(len(heads))
    ]
    out.sort(key=lambda g: (g.start, g.cpu))
    return out


class SyntheticNoiseChart:
    """The per-interruption noise chart for one CPU (or the whole node)."""

    def __init__(
        self,
        analysis: NoiseAnalysis,
        cpu: Optional[int] = None,
        merge_gap_ns: int = 300,
        noise_only: bool = True,
    ) -> None:
        """``noise_only=False`` also shows excluded activities (syscalls,
        the tracer daemon's own bursts) — useful when explaining a spike an
        indirect tool like FTQ perceives but the noise accounting excludes."""
        self.analysis = analysis
        self.cpu = cpu
        source = getattr(analysis, "table", None)
        self.interruptions = build_interruptions(
            source if source is not None else analysis.activities,
            merge_gap_ns=merge_gap_ns,
            cpu=cpu,
            noise_only=noise_only,
        )

    # ------------------------------------------------------------------
    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(times, noise_ns)`` arrays — the chart's x/y values."""
        times = np.array([g.start for g in self.interruptions], dtype=np.int64)
        noise = np.array([g.noise_ns for g in self.interruptions], dtype=np.int64)
        return times, noise

    def window(self, t0: int, t1: int) -> List[Interruption]:
        """Interruptions inside a time window (the paper's zoom views)."""
        return [g for g in self.interruptions if t0 <= g.start < t1]

    def at(self, time_ns: int, slack_ns: int = 0) -> Optional[Interruption]:
        """The interruption covering (or nearest within slack of) a time."""
        best = None
        best_gap = None
        for g in self.interruptions:
            if g.start - slack_ns <= time_ns <= g.end + slack_ns:
                gap = 0 if g.start <= time_ns <= g.end else min(
                    abs(g.start - time_ns), abs(g.end - time_ns)
                )
                if best is None or gap < best_gap:
                    best, best_gap = g, gap
        return best

    def largest(self, n: int = 10) -> List[Interruption]:
        return sorted(
            self.interruptions, key=lambda g: g.noise_ns, reverse=True
        )[:n]

    def total_noise_ns(self) -> int:
        return sum(g.noise_ns for g in self.interruptions)

    def describe_window(self, t0: int, t1: int) -> str:
        """Text rendering of a zoomed window (Fig. 1d / Fig. 10 style)."""
        lines = []
        for g in self.window(t0, t1):
            lines.append(g.describe())
        return "\n".join(lines)
