"""The analysis facade: from a trace to the paper's numbers.

:class:`NoiseAnalysis` reconstructs activities, classifies noise, and
answers the questions the paper's tables and figures ask:

* per-event frequency/duration statistics (Tables I-VI) — frequencies are
  per CPU-second, durations are *self* time so nesting never double counts;
* the five-category noise breakdown (Figure 3);
* duration arrays for histograms (Figures 4, 6, 8);
* per-quantum noise timelines (the synthetic chart / FTQ comparison);
* raw activity access for traces and filters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.classify import classify_activities, noise_activities
from repro.core.model import (
    Activity,
    BREAKDOWN_CATEGORIES,
    NoiseCategory,
    PREEMPT_EVENT,
    TraceMeta,
)
from repro.core.nesting import build_activities, build_preemptions
from repro.tracing.ctf import Trace
from repro.tracing.events import NAME_TO_EVENT, RECORD_DTYPE
from repro.util.stats import DurationStats, describe_durations
from repro.util.units import SEC

#: Name accepted for the scheduler-derived pseudo event.
PREEMPT_NAME = "preemption"


class NoiseAnalysis:
    """Offline lttng-noise analysis of one recorded execution."""

    def __init__(
        self,
        trace: Union[Trace, np.ndarray],
        meta: Optional[TraceMeta] = None,
        span_ns: Optional[int] = None,
        ncpus: Optional[int] = None,
    ) -> None:
        if isinstance(trace, Trace):
            records = trace.records()
            self.ncpus = ncpus if ncpus is not None else trace.ncpus
            self.start_ts = trace.start_ts
            self.end_ts = trace.end_ts
        else:
            records = np.asarray(trace, dtype=RECORD_DTYPE)
            self.ncpus = ncpus if ncpus is not None else (
                int(records["cpu"].max()) + 1 if len(records) else 1
            )
            self.start_ts = int(records["time"].min()) if len(records) else 0
            self.end_ts = int(records["time"].max()) if len(records) else 0
        if span_ns is not None:
            self.end_ts = self.start_ts + span_ns
        self.span_ns = max(1, self.end_ts - self.start_ts)
        self.records = records
        self.meta = meta if meta is not None else TraceMeta()

        kacts = build_activities(records, end_ts=self.end_ts)
        preemptions = build_preemptions(
            records, self.meta, end_ts=self.end_ts, kact_activities=kacts
        )
        #: Every reconstructed activity, time-sorted, classified.
        self.activities: List[Activity] = classify_activities(
            kacts, preemptions, self.meta
        )

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select(
        self,
        event: Union[int, str, None] = None,
        category: Optional[NoiseCategory] = None,
        cpu: Optional[int] = None,
        noise_only: bool = False,
        include_truncated: bool = False,
    ) -> List[Activity]:
        """Filter activities; ``event`` accepts ids or kernel-style names."""
        event_id = _resolve_event(event)
        out = []
        for act in self.activities:
            if event_id is not None and act.event != event_id:
                continue
            if category is not None and act.category != category:
                continue
            if cpu is not None and act.cpu != cpu:
                continue
            if noise_only and not act.is_noise:
                continue
            if not include_truncated and act.truncated:
                continue
            out.append(act)
        return out

    def noise(self) -> List[Activity]:
        return noise_activities(self.activities)

    def durations(
        self,
        event: Union[int, str],
        cpu: Optional[int] = None,
        noise_only: bool = False,
    ) -> np.ndarray:
        """Self-time durations (ns) of one activity type, for histograms."""
        acts = self.select(event=event, cpu=cpu, noise_only=noise_only)
        return np.array([a.self_ns for a in acts], dtype=np.int64)

    # ------------------------------------------------------------------
    # Tables (paper Tables I-VI shape)
    # ------------------------------------------------------------------
    def stats(
        self,
        event: Union[int, str],
        noise_only: bool = False,
    ) -> DurationStats:
        """One ``(freq, avg, max, min)`` row; freq is per CPU-second."""
        durations = self.durations(event, noise_only=noise_only)
        return describe_durations(durations, self.span_ns, cpus=self.ncpus)

    def stats_by_event(self, noise_only: bool = True) -> Dict[str, DurationStats]:
        """Stats for every activity type present in the trace."""
        groups: Dict[str, List[int]] = {}
        for act in self.activities:
            if act.truncated:
                continue
            if noise_only and not act.is_noise:
                continue
            groups.setdefault(act.name, []).append(act.self_ns)
        return {
            name: describe_durations(values, self.span_ns, cpus=self.ncpus)
            for name, values in sorted(groups.items())
        }

    # ------------------------------------------------------------------
    # Breakdown (Figure 3)
    # ------------------------------------------------------------------
    def breakdown_ns(self) -> Dict[NoiseCategory, int]:
        """Total noise self-time per category (truncated included)."""
        totals: Dict[NoiseCategory, int] = {c: 0 for c in BREAKDOWN_CATEGORIES}
        for act in self.activities:
            if act.is_noise:
                totals[act.category] = totals.get(act.category, 0) + act.self_ns
        return totals

    def breakdown_fractions(self) -> Dict[NoiseCategory, float]:
        totals = self.breakdown_ns()
        grand = sum(totals.values())
        if grand == 0:
            return {c: 0.0 for c in totals}
        return {c: v / grand for c, v in totals.items()}

    def total_noise_ns(self) -> int:
        return sum(a.self_ns for a in self.activities if a.is_noise)

    def noise_fraction(self) -> float:
        """Noise time as a fraction of total CPU time observed."""
        return self.total_noise_ns() / (self.span_ns * self.ncpus)

    def per_cpu_noise_ns(self) -> np.ndarray:
        """Total noise per CPU — where the jitter actually lands."""
        out = np.zeros(self.ncpus, dtype=np.int64)
        for act in self.activities:
            if act.is_noise and act.cpu < self.ncpus:
                out[act.cpu] += act.self_ns
        return out

    def per_cpu_breakdown(self) -> "Dict[int, Dict[NoiseCategory, int]]":
        """Per-CPU category totals (noise only)."""
        out: Dict[int, Dict[NoiseCategory, int]] = {
            cpu: {c: 0 for c in BREAKDOWN_CATEGORIES} for cpu in range(self.ncpus)
        }
        for act in self.activities:
            if act.is_noise and act.cpu < self.ncpus:
                per_cpu = out[act.cpu]
                per_cpu[act.category] = per_cpu.get(act.category, 0) + act.self_ns
        return out

    def noise_imbalance(self) -> float:
        """Max/mean ratio of per-CPU noise: 1.0 = perfectly even.

        The paper's scalability argument is about *variation*: noise that
        lands unevenly (one CPU taking the interrupts, one rank near the
        rebalance victim) creates the stragglers collectives wait for.
        """
        per_cpu = self.per_cpu_noise_ns().astype(np.float64)
        mean = per_cpu.mean()
        if mean <= 0:
            return 1.0
        return float(per_cpu.max() / mean)

    # ------------------------------------------------------------------
    # Timelines (synthetic chart inputs, FTQ comparison)
    # ------------------------------------------------------------------
    def markers(self) -> "np.ndarray":
        """Workload marker point events as ``(time, pid, arg)`` rows
        (phase changes, FTQ quantum marks, ...)."""
        from repro.tracing.events import Ev

        records = self.records
        mask = records["event"] == int(Ev.MARKER)
        chosen = records[mask]
        out = np.zeros((int(mask.sum()), 3), dtype=np.int64)
        out[:, 0] = chosen["time"]
        out[:, 1] = chosen["pid"]
        out[:, 2] = chosen["arg"].astype(np.int64)
        return out

    def noise_timeline(
        self,
        quantum_ns: int,
        cpu: Optional[int] = None,
        t0: Optional[int] = None,
        t1: Optional[int] = None,
    ) -> np.ndarray:
        """Noise nanoseconds per quantum.

        Each activity's self time is distributed proportionally over its
        wall interval, then binned; exact for the (typical) activity that
        fits inside one quantum.
        """
        if quantum_ns <= 0:
            raise ValueError("quantum must be positive")
        t0 = self.start_ts if t0 is None else t0
        t1 = self.end_ts if t1 is None else t1
        n = max(1, -(-(t1 - t0) // quantum_ns))
        out = np.zeros(n, dtype=np.float64)
        for act in self.activities:
            if not act.is_noise or act.end <= t0 or act.start >= t1:
                continue
            if cpu is not None and act.cpu != cpu:
                continue
            total = act.total_ns if act.total_ns > 0 else 1
            density = act.self_ns / total
            first = max(0, (act.start - t0) // quantum_ns)
            last = min(n - 1, (act.end - 1 - t0) // quantum_ns)
            for q in range(first, last + 1):
                q_begin = t0 + q * quantum_ns
                q_end = q_begin + quantum_ns
                out[q] += act.overlap(q_begin, q_end) * density
        return out

    def user_time_cumulative(self, cpu: int, t0: int, t1: int) -> "np.ndarray":
        """Breakpoints of cumulative *user* time on a CPU — FTQ's ruler.

        Returns an array of ``(wall_ts, user_ns)`` rows at every kernel
        activity boundary on the CPU, suitable for interpolation.
        """
        marks: List[tuple] = []
        for act in self.activities:
            if act.cpu != cpu or act.depth != 0:
                continue
            if act.end <= t0 or act.start >= t1:
                continue
            marks.append((max(act.start, t0), min(act.end, t1)))
        marks.sort()
        # Merge overlaps (a tick nested inside a preemption window produces
        # two overlapping depth-0 intervals).
        merged: List[tuple] = []
        for begin, end in marks:
            if merged and begin <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((begin, end))
        rows = [(t0, 0)]
        user = 0
        cursor = t0
        for begin, end in merged:
            if begin > cursor:
                user += begin - cursor
                cursor = begin
            rows.append((begin, user))
            if end > cursor:
                cursor = end
            rows.append((cursor, user))
        if cursor < t1:
            user += t1 - cursor
        rows.append((t1, user))
        return np.array(rows, dtype=np.int64)


def _resolve_event(event: Union[int, str, None]) -> Optional[int]:
    if event is None:
        return None
    if isinstance(event, str):
        if event == PREEMPT_NAME:
            return PREEMPT_EVENT
        try:
            return NAME_TO_EVENT[event]
        except KeyError:
            raise ValueError(f"unknown event name: {event!r}") from None
    return int(event)
