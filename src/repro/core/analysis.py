"""The analysis facade: from a trace to the paper's numbers.

:class:`NoiseAnalysis` reconstructs activities, classifies noise, and
answers the questions the paper's tables and figures ask:

* per-event frequency/duration statistics (Tables I-VI) — frequencies are
  per CPU-second, durations are *self* time so nesting never double counts;
* the five-category noise breakdown (Figure 3);
* duration arrays for histograms (Figures 4, 6, 8);
* per-quantum noise timelines (the synthetic chart / FTQ comparison);
* raw activity access for traces and filters.

Everything is computed from one columnar :class:`ActivityTable`
(``analysis.table``) with masked numpy reductions; ``analysis.activities``
is the lazily materialized object view for list-shaped consumers.

Noise totals (:meth:`NoiseAnalysis.total_noise_ns`,
:meth:`~NoiseAnalysis.breakdown_ns`, :meth:`~NoiseAnalysis.noise_fraction`,
:meth:`~NoiseAnalysis.per_cpu_noise_ns`) all agree on the CPU universe:
activities referencing ``cpu >= ncpus`` are excluded everywhere (with a
``RuntimeWarning`` at construction), so the noise fraction's numerator sums
exactly the CPUs its ``span_ns * ncpus`` denominator covers.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Union

import numpy as np

from repro import obs
from repro.core.classify import classify_table
from repro.core.model import (
    Activity,
    ActivityTable,
    BREAKDOWN_CATEGORIES,
    CATEGORY_CODE,
    CATEGORY_ORDER,
    NoiseCategory,
    PREEMPT_EVENT,
    TraceMeta,
)
from repro.core.nesting import build_activity_table, build_preemption_table
from repro.tracing.ctf import Trace
from repro.tracing.events import NAME_TO_EVENT, RECORD_DTYPE
from repro.util.stats import DurationStats, describe_durations

#: Name accepted for the scheduler-derived pseudo event.
PREEMPT_NAME = "preemption"


def binned_noise_ns(
    table: ActivityTable,
    quantum_ns: int,
    t0: int,
    t1: int,
    cpu: Optional[int] = None,
) -> np.ndarray:
    """Noise nanoseconds per quantum over ``[t0, t1)``.

    Each noise activity's self time is distributed proportionally over its
    wall interval (density ``self_ns / total_ns``), then binned with one
    ``np.add.at`` over the expanded (activity, quantum) segments.  The
    accumulation runs activity-major in table order, matching the reference
    double loop bit for bit.
    """
    if quantum_ns <= 0:
        raise ValueError("quantum must be positive")
    n = max(1, -(-(t1 - t0) // quantum_ns))
    out = np.zeros(n, dtype=np.float64)
    d = table.data
    m = d["is_noise"] & (d["end"] > t0) & (d["start"] < t1)
    if cpu is not None:
        m &= d["cpu"] == cpu
    if not m.any():
        return out
    starts = d["start"][m]
    ends = d["end"][m]
    density = d["self_ns"][m] / np.maximum(d["total_ns"][m], 1)
    first = np.maximum(0, (starts - t0) // quantum_ns)
    last = np.minimum(n - 1, (ends - 1 - t0) // quantum_ns)
    k = np.maximum(0, last - first + 1)
    total = int(k.sum())
    if total == 0:
        return out
    idx = np.repeat(np.arange(len(k)), k)
    run_base = np.repeat(np.cumsum(k) - k, k)
    q = first[idx] + (np.arange(total) - run_base)
    q_begin = t0 + q * quantum_ns
    overlap = np.minimum(ends[idx], q_begin + quantum_ns) - np.maximum(
        starts[idx], q_begin
    )
    np.maximum(overlap, 0, out=overlap)
    np.add.at(out, q, overlap * density[idx])
    return out


class NoiseAnalysis:
    """Offline lttng-noise analysis of one recorded execution."""

    def __init__(
        self,
        trace: Union[Trace, np.ndarray],
        meta: Optional[TraceMeta] = None,
        span_ns: Optional[int] = None,
        ncpus: Optional[int] = None,
    ) -> None:
        gaps: list = []
        if isinstance(trace, Trace):
            records, gaps = trace.records_with_gaps()
            self.ncpus = ncpus if ncpus is not None else trace.ncpus
            self.start_ts = trace.start_ts
            self.end_ts = trace.end_ts
        else:
            records = np.asarray(trace, dtype=RECORD_DTYPE)
            self.ncpus = ncpus if ncpus is not None else (
                int(records["cpu"].max()) + 1 if len(records) else 1
            )
            self.start_ts = int(records["time"].min()) if len(records) else 0
            self.end_ts = int(records["time"].max()) if len(records) else 0
        if span_ns is not None:
            self.end_ts = self.start_ts + span_ns
        self.span_ns = max(1, self.end_ts - self.start_ts)
        self.records = records
        self.meta = meta if meta is not None else TraceMeta()

        with obs.span("analysis", records=len(records)):
            kacts = build_activity_table(
                records, end_ts=self.end_ts, meta=self.meta, gaps=gaps
            )
            preemptions = build_preemption_table(
                records, self.meta, end_ts=self.end_ts, kact_table=kacts
            )
            #: Every reconstructed activity as one columnar table,
            #: time-sorted and classified.
            self.table: ActivityTable = classify_table(
                kacts, preemptions, self.meta
            )
        out_of_range = int((self.table.data["cpu"] >= self.ncpus).sum())
        if out_of_range:
            if obs.enabled():
                obs.counter("analysis.out_of_range_cpu").inc(out_of_range)
            warnings.warn(
                f"{out_of_range} activities reference CPUs >= ncpus="
                f"{self.ncpus}; they are excluded from noise totals",
                RuntimeWarning,
                stacklevel=2,
            )
        self._activities: Optional[List[Activity]] = None

    @property
    def activities(self) -> List[Activity]:
        """Object view of the table (materialized lazily, then cached)."""
        if self._activities is None:
            self._activities = self.table.rows()
        return self._activities

    def _noise_mask(self) -> np.ndarray:
        """Noise rows on CPUs the analysis covers (``cpu < ncpus``)."""
        d = self.table.data
        return d["is_noise"] & (d["cpu"] < self.ncpus)

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def select(
        self,
        event: Union[int, str, None] = None,
        category: Optional[NoiseCategory] = None,
        cpu: Optional[int] = None,
        noise_only: bool = False,
        include_truncated: bool = False,
    ) -> List[Activity]:
        """Filter activities; ``event`` accepts ids or kernel-style names."""
        return self.table.rows(
            self.table.mask(
                event=_resolve_event(event),
                category=category,
                cpu=cpu,
                noise_only=noise_only,
                include_truncated=include_truncated,
            )
        )

    def noise(self) -> List[Activity]:
        return self.table.rows(self.table.data["is_noise"])

    def durations(
        self,
        event: Union[int, str],
        cpu: Optional[int] = None,
        noise_only: bool = False,
    ) -> np.ndarray:
        """Self-time durations (ns) of one activity type, for histograms."""
        m = self.table.mask(
            event=_resolve_event(event),
            cpu=cpu,
            noise_only=noise_only,
            include_truncated=False,
        )
        return self.table.data["self_ns"][m].astype(np.int64)

    # ------------------------------------------------------------------
    # Tables (paper Tables I-VI shape)
    # ------------------------------------------------------------------
    def stats(
        self,
        event: Union[int, str],
        noise_only: bool = False,
    ) -> DurationStats:
        """One ``(freq, avg, max, min)`` row; freq is per CPU-second."""
        durations = self.durations(event, noise_only=noise_only)
        return describe_durations(durations, self.span_ns, cpus=self.ncpus)

    def stats_by_event(self, noise_only: bool = True) -> Dict[str, DurationStats]:
        """Stats for every activity type present in the trace."""
        d = self.table.data
        m = ~d["truncated"]
        if noise_only:
            m = m & d["is_noise"]
        names = self.table.names()[m]
        self_ns = d["self_ns"][m]
        if not len(names):
            return {}
        uniq, inv = np.unique(names, return_inverse=True)
        order = np.argsort(inv, kind="stable")
        counts = np.bincount(inv, minlength=len(uniq))
        chunks = np.split(self_ns[order], np.cumsum(counts)[:-1])
        return {
            name: describe_durations(values, self.span_ns, cpus=self.ncpus)
            for name, values in zip(uniq.tolist(), chunks)
        }

    # ------------------------------------------------------------------
    # Breakdown (Figure 3)
    # ------------------------------------------------------------------
    def breakdown_ns(self) -> Dict[NoiseCategory, int]:
        """Total noise self-time per category (truncated included)."""
        d = self.table.data
        m = self._noise_mask()
        codes = d["category"][m]
        acc = np.zeros(len(CATEGORY_ORDER), dtype=np.int64)
        np.add.at(acc, codes, d["self_ns"][m])
        totals: Dict[NoiseCategory, int] = {
            c: int(acc[CATEGORY_CODE[c]]) for c in BREAKDOWN_CATEGORIES
        }
        # Non-breakdown categories appear as keys when present, even with a
        # zero total, matching the object path.
        for code in np.unique(codes).tolist():
            totals[CATEGORY_ORDER[code]] = int(acc[code])
        return totals

    def breakdown_fractions(self) -> Dict[NoiseCategory, float]:
        totals = self.breakdown_ns()
        grand = sum(totals.values())
        if grand == 0:
            return {c: 0.0 for c in totals}
        return {c: v / grand for c, v in totals.items()}

    def total_noise_ns(self) -> int:
        return int(self.table.data["self_ns"][self._noise_mask()].sum())

    def noise_fraction(self) -> float:
        """Noise time as a fraction of total CPU time observed.

        Numerator and denominator cover the same universe: noise on the
        ``ncpus`` CPUs of the trace over ``span_ns`` (activities on CPUs
        beyond ``ncpus`` are excluded, matching :meth:`per_cpu_noise_ns`).
        """
        return self.total_noise_ns() / (self.span_ns * self.ncpus)

    def per_cpu_noise_ns(self) -> np.ndarray:
        """Total noise per CPU — where the jitter actually lands."""
        d = self.table.data
        m = self._noise_mask()
        out = np.zeros(self.ncpus, dtype=np.int64)
        np.add.at(out, d["cpu"][m], d["self_ns"][m])
        return out

    def per_cpu_breakdown(self) -> "Dict[int, Dict[NoiseCategory, int]]":
        """Per-CPU category totals (noise only)."""
        d = self.table.data
        m = self._noise_mask()
        cpus = d["cpu"][m]
        codes = d["category"][m]
        acc = np.zeros((self.ncpus, len(CATEGORY_ORDER)), dtype=np.int64)
        np.add.at(acc, (cpus, codes), d["self_ns"][m])
        out: Dict[int, Dict[NoiseCategory, int]] = {
            cpu: {c: 0 for c in BREAKDOWN_CATEGORIES}
            for cpu in range(self.ncpus)
        }
        if len(cpus):
            pair = cpus.astype(np.int64) * len(CATEGORY_ORDER) + codes
            for key in np.unique(pair).tolist():
                cpu, code = divmod(key, len(CATEGORY_ORDER))
                out[cpu][CATEGORY_ORDER[code]] = int(acc[cpu, code])
        return out

    def noise_imbalance(self) -> float:
        """Max/mean ratio of per-CPU noise: 1.0 = perfectly even.

        The paper's scalability argument is about *variation*: noise that
        lands unevenly (one CPU taking the interrupts, one rank near the
        rebalance victim) creates the stragglers collectives wait for.
        """
        per_cpu = self.per_cpu_noise_ns().astype(np.float64)
        mean = per_cpu.mean()
        if mean <= 0:
            return 1.0
        return float(per_cpu.max() / mean)

    # ------------------------------------------------------------------
    # Timelines (synthetic chart inputs, FTQ comparison)
    # ------------------------------------------------------------------
    def markers(self) -> "np.ndarray":
        """Workload marker point events as ``(time, pid, arg)`` rows
        (phase changes, FTQ quantum marks, ...)."""
        from repro.tracing.events import Ev

        records = self.records
        mask = records["event"] == int(Ev.MARKER)
        chosen = records[mask]
        out = np.zeros((int(mask.sum()), 3), dtype=np.int64)
        out[:, 0] = chosen["time"]
        out[:, 1] = chosen["pid"]
        out[:, 2] = chosen["arg"].astype(np.int64)
        return out

    def noise_timeline(
        self,
        quantum_ns: int,
        cpu: Optional[int] = None,
        t0: Optional[int] = None,
        t1: Optional[int] = None,
    ) -> np.ndarray:
        """Noise nanoseconds per quantum.

        Each activity's self time is distributed proportionally over its
        wall interval, then binned; exact for the (typical) activity that
        fits inside one quantum.
        """
        t0 = self.start_ts if t0 is None else t0
        t1 = self.end_ts if t1 is None else t1
        return binned_noise_ns(self.table, quantum_ns, t0, t1, cpu=cpu)

    def user_time_cumulative(self, cpu: int, t0: int, t1: int) -> "np.ndarray":
        """Breakpoints of cumulative *user* time on a CPU — FTQ's ruler.

        Returns an array of ``(wall_ts, user_ns)`` rows at every kernel
        activity boundary on the CPU, suitable for interpolation.
        """
        d = self.table.data
        m = (
            (d["cpu"] == cpu)
            & (d["depth"] == 0)
            & (d["end"] > t0)
            & (d["start"] < t1)
        )
        begins = np.maximum(d["start"][m], t0)
        ends = np.minimum(d["end"][m], t1)
        order = np.lexsort((ends, begins))
        marks = list(zip(begins[order].tolist(), ends[order].tolist()))
        # Merge overlaps (a tick nested inside a preemption window produces
        # two overlapping depth-0 intervals).
        merged: List[tuple] = []
        for begin, end in marks:
            if merged and begin <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((begin, end))
        rows = [(t0, 0)]
        user = 0
        cursor = t0
        for begin, end in merged:
            if begin > cursor:
                user += begin - cursor
                cursor = begin
            rows.append((begin, user))
            if end > cursor:
                cursor = end
            rows.append((cursor, user))
        if cursor < t1:
            user += t1 - cursor
        rows.append((t1, user))
        return np.array(rows, dtype=np.int64)


def _resolve_event(event: Union[int, str, None]) -> Optional[int]:
    if event is None:
        return None
    if isinstance(event, str):
        if event == PREEMPT_NAME:
            return PREEMPT_EVENT
        try:
            return NAME_TO_EVENT[event]
        except KeyError:
            raise ValueError(f"unknown event name: {event!r}") from None
    return int(event)
