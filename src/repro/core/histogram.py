"""Duration distributions (Figures 4, 6 and 8).

The paper plots per-activity execution-time histograms, cut at the 99th
percentile "to improve the visualization" (footnote 3), and reads shapes off
them: AMG's two page-fault peaks, IRS's compact vs UMT's wide rebalance
distribution, ``run_timer_softirq``'s long tail.  This module computes the
histograms and the shape statistics those readings rest on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Histogram:
    """A computed duration histogram."""

    edges: np.ndarray    # bin edges, ns (len = nbins + 1)
    counts: np.ndarray   # per-bin counts
    cut_pct: float       # percentile the tail was cut at
    n_total: int         # samples before the cut
    n_kept: int          # samples after the cut

    @property
    def centers(self) -> np.ndarray:
        return (self.edges[:-1] + self.edges[1:]) / 2.0

    def mode_ns(self) -> float:
        """Center of the most populated bin (the distribution's main peak)."""
        if self.counts.sum() == 0:
            return 0.0
        return float(self.centers[int(np.argmax(self.counts))])

    def peaks(
        self, min_rel_height: float = 0.25, min_separation_bins: int = 4
    ) -> np.ndarray:
        """Centers of distinct local maxima at least ``min_rel_height`` of
        the max, after light smoothing (sampling noise in a histogram throws
        spurious one-bin maxima otherwise).

        Used to verify bimodality (AMG's ~2.5 us and ~4.5 us fault peaks).
        """
        c = self.counts.astype(np.float64)
        if c.max() == 0:
            return self.centers[:0]
        if len(c) < 3:
            # Too short to smooth: the single peak is the argmax bin (not
            # necessarily bin 0).
            return np.array([float(self.centers[int(np.argmax(c))])])
        # [1,2,1]/4 binomial smoothing, twice.
        kernel = np.array([0.25, 0.5, 0.25])
        for _ in range(2):
            c = np.convolve(c, kernel, mode="same")
        threshold = c.max() * min_rel_height
        peak_idx = [
            i
            for i in range(len(c))
            if c[i] >= threshold
            and (i == 0 or c[i] >= c[i - 1])
            and (i == len(c) - 1 or c[i] > c[i + 1])
        ]
        # Keep only the strongest peak within each separation window.
        peak_idx.sort(key=lambda i: -c[i])
        kept: list = []
        for i in peak_idx:
            if all(abs(i - j) >= min_separation_bins for j in kept):
                kept.append(i)
        kept.sort()
        return np.array([float(self.centers[i]) for i in kept])


def duration_histogram(
    durations_ns: Sequence[int],
    bins: int = 60,
    cut_pct: float = 99.0,
    range_ns: Optional[Tuple[int, int]] = None,
) -> Histogram:
    """Histogram of activity durations with the paper's percentile cut."""
    arr = np.asarray(durations_ns, dtype=np.int64)
    n_total = int(arr.size)
    if n_total == 0:
        return Histogram(
            edges=np.array([0.0, 1.0]),
            counts=np.zeros(1, dtype=np.int64),
            cut_pct=cut_pct,
            n_total=0,
            n_kept=0,
        )
    if cut_pct < 100.0:
        cut = np.percentile(arr, cut_pct)
        arr = arr[arr <= cut]
    counts, edges = np.histogram(arr, bins=bins, range=range_ns)
    return Histogram(
        edges=edges,
        counts=counts,
        cut_pct=cut_pct,
        n_total=n_total,
        n_kept=int(arr.size),
    )


def table_histogram(
    table,
    event=None,
    noise_only: bool = False,
    bins: int = 60,
    cut_pct: float = 99.0,
    range_ns: Optional[Tuple[int, int]] = None,
) -> Histogram:
    """Histogram straight off an :class:`~repro.core.model.ActivityTable`.

    Selects self times column-wise (no per-object iteration): optionally one
    event id, optionally noise activities only; truncated activities are
    excluded, matching :meth:`NoiseAnalysis.durations`.
    """
    m = table.mask(event=event, noise_only=noise_only, include_truncated=False)
    return duration_histogram(
        table.data["self_ns"][m], bins=bins, cut_pct=cut_pct, range_ns=range_ns
    )


def tail_index(durations_ns: Sequence[int]) -> float:
    """A simple long-tail indicator: p99.9 / median.

    ``run_timer_softirq`` (Fig. 8) scores high; compact distributions like
    IRS's rebalance (Fig. 6b) score low.
    """
    arr = np.asarray(durations_ns, dtype=np.float64)
    if arr.size == 0:
        return 0.0
    median = np.median(arr)
    if median <= 0:
        return 0.0
    return float(np.percentile(arr, 99.9) / median)


def spread_ratio(durations_ns: Sequence[int]) -> float:
    """Relative spread (IQR / median): wide (UMT) vs compact (IRS) shapes."""
    arr = np.asarray(durations_ns, dtype=np.float64)
    if arr.size == 0:
        return 0.0
    median = np.median(arr)
    if median <= 0:
        return 0.0
    q75, q25 = np.percentile(arr, [75, 25])
    return float((q75 - q25) / median)
