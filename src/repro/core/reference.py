"""Reference object-path implementation of the analysis core.

This module preserves the original per-object pipeline — Python loops over
:class:`~repro.core.model.Activity` dataclasses — exactly as it was before
the columnar :class:`~repro.core.model.ActivityTable` refactor.  It exists
for two purposes:

* the differential property test (``tests/test_columnar.py``) checks that
  the columnar pipeline's outputs are **exactly** equal to this
  implementation on randomized record streams;
* ``benchmarks/bench_perf_pipeline.py`` measures the columnar analyze
  phase against this baseline (the ≥5× acceptance bar).

Do not "optimize" this file: its value is being the slow, obviously-correct
original.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.model import (
    Activity,
    BREAKDOWN_CATEGORIES,
    EVENT_CATEGORY,
    NoiseCategory,
    PREEMPT_EVENT,
    TRACER_PREEMPT_EVENT,
    TraceMeta,
)
from repro.simkernel.task import TaskKind, TaskState
from repro.tracing.ctf import Trace
from repro.tracing.events import (
    Ev,
    Flag,
    NAME_TO_EVENT,
    RECORD_DTYPE,
    decode_switch,
    decode_task_state,
    event_name,
    is_paired,
)
from repro.util.stats import DurationStats, describe_durations

PREEMPT_NAME = "preemption"


class _Open:
    __slots__ = ("event", "start", "pid", "arg", "nested")

    def __init__(self, event: int, start: int, pid: int, arg: int) -> None:
        self.event = event
        self.start = start
        self.pid = pid
        self.arg = arg
        self.nested = 0


def build_activities_ref(
    records: np.ndarray,
    end_ts: Optional[int] = None,
    strict: bool = False,
) -> List[Activity]:
    """Original object-path activity reconstruction."""
    stacks: Dict[int, List[_Open]] = {}
    activities: List[Activity] = []

    times = records["time"]
    events = records["event"]
    cpus = records["cpu"]
    flags = records["flag"]
    pids = records["pid"]
    args = records["arg"]

    for i in range(len(records)):
        event = int(events[i])
        if not is_paired(event):
            continue
        cpu = int(cpus[i])
        t = int(times[i])
        flag = int(flags[i])
        stack = stacks.setdefault(cpu, [])
        if flag == Flag.ENTRY:
            stack.append(_Open(event, t, int(pids[i]), int(args[i])))
        elif flag == Flag.EXIT:
            if not stack or stack[-1].event != event:
                if strict:
                    raise ValueError(
                        f"unmatched EXIT for {event_name(event)} "
                        f"on cpu{cpu} at t={t}"
                    )
                continue
            frame = stack.pop()
            total = t - frame.start
            self_ns = total - frame.nested
            if stack:
                stack[-1].nested += total
            activities.append(
                Activity(
                    event=frame.event,
                    name=event_name(frame.event),
                    cpu=cpu,
                    pid=frame.pid,
                    start=frame.start,
                    end=t,
                    total_ns=total,
                    self_ns=max(0, self_ns),
                    depth=len(stack),
                    arg=frame.arg,
                )
            )

    if end_ts is None and len(records):
        end_ts = int(times.max())
    for cpu, stack in stacks.items():
        depth = 0
        for frame in stack:
            total = max(0, int(end_ts) - frame.start)
            activities.append(
                Activity(
                    event=frame.event,
                    name=event_name(frame.event),
                    cpu=cpu,
                    pid=frame.pid,
                    start=frame.start,
                    end=int(end_ts),
                    total_ns=total,
                    self_ns=max(0, total - frame.nested),
                    depth=depth,
                    arg=frame.arg,
                    truncated=True,
                )
            )
            depth += 1

    activities.sort(key=lambda a: (a.start, a.cpu, a.depth))
    return activities


def build_preemptions_ref(
    records: np.ndarray,
    meta: TraceMeta,
    end_ts: Optional[int] = None,
    kact_activities: Optional[List[Activity]] = None,
) -> List[Activity]:
    """Original object-path preemption-window derivation."""
    times = records["time"]
    events = records["event"]
    cpus = records["cpu"]
    args = records["arg"]

    order = np.argsort(times, kind="stable")

    state: Dict[int, int] = {}
    open_seg: Dict[int, Tuple[int, int]] = {}
    displaced: Dict[int, Optional[int]] = {}
    out: List[Activity] = []
    if end_ts is None and len(records):
        end_ts = int(times.max())

    def close_segment(cpu: int, t: int, truncated: bool = False) -> None:
        seg = open_seg.pop(cpu, None)
        if seg is None:
            return
        daemon_pid, start = seg
        disp = displaced.get(cpu)
        if disp is None:
            return
        total = t - start
        if total <= 0:
            return
        event = (
            TRACER_PREEMPT_EVENT
            if meta.kind_of(daemon_pid) == TaskKind.TRACERD
            else PREEMPT_EVENT
        )
        out.append(
            Activity(
                event=event,
                name=f"preempt:{meta.name_of(daemon_pid)}",
                cpu=cpu,
                pid=daemon_pid,
                start=start,
                end=t,
                total_ns=total,
                self_ns=total,
                displaced_pid=disp,
                truncated=truncated,
            )
        )

    for i in order:
        event = int(events[i])
        if event == Ev.TASK_STATE:
            pid, st = decode_task_state(int(args[i]))
            state[pid] = st
        elif event == Ev.SCHED_SWITCH:
            cpu = int(cpus[i])
            t = int(times[i])
            prev_pid, next_pid = decode_switch(int(args[i]))
            close_segment(cpu, t)
            prev_kind = meta.kind_of(prev_pid)
            next_kind = meta.kind_of(next_pid)
            if (
                prev_kind == TaskKind.RANK
                and state.get(prev_pid) == TaskState.RUNNABLE
            ):
                displaced[cpu] = prev_pid
            if next_kind in (
                TaskKind.KDAEMON,
                TaskKind.UDAEMON,
                TaskKind.TRACERD,
            ):
                open_seg[cpu] = (next_pid, t)
            else:
                displaced[cpu] = None

    for cpu in list(open_seg):
        close_segment(cpu, int(end_ts), truncated=True)

    if kact_activities:
        _subtract_nested_ref(out, kact_activities)

    out.sort(key=lambda a: (a.start, a.cpu))
    return out


def _subtract_nested_ref(
    preemptions: List[Activity], kacts: List[Activity]
) -> None:
    by_cpu: Dict[int, List[Activity]] = {}
    for act in kacts:
        if act.depth == 0:
            by_cpu.setdefault(act.cpu, []).append(act)
    for acts in by_cpu.values():
        acts.sort(key=lambda a: a.start)
    for window in preemptions:
        acts = by_cpu.get(window.cpu)
        if not acts:
            continue
        nested = 0
        starts = [a.start for a in acts]
        idx = bisect.bisect_left(starts, window.start)
        while idx < len(acts) and acts[idx].start < window.end:
            nested += acts[idx].overlap(window.start, window.end)
            idx += 1
        window.self_ns = max(0, window.total_ns - nested)


def classify_activities_ref(
    kacts: List[Activity],
    preemptions: List[Activity],
    meta: TraceMeta,
) -> List[Activity]:
    """Original object-path classification."""
    windows = _preemption_index_ref(preemptions)

    for act in kacts:
        act.category = EVENT_CATEGORY.get(act.event, NoiseCategory.OTHER)
        act.is_noise = _kact_is_noise_ref(act, meta, windows)

    for window in preemptions:
        window.category = EVENT_CATEGORY.get(
            window.event, NoiseCategory.OTHER
        )
        window.is_noise = (
            window.event == PREEMPT_EVENT
            and window.displaced_pid is not None
        )

    merged = kacts + preemptions
    merged.sort(key=lambda a: (a.start, a.cpu, a.depth))
    return merged


def _preemption_index_ref(
    preemptions: List[Activity],
) -> Dict[int, Tuple[List[int], List[Activity]]]:
    by_cpu: Dict[int, List[Activity]] = {}
    for window in preemptions:
        if window.event in (PREEMPT_EVENT, TRACER_PREEMPT_EVENT):
            by_cpu.setdefault(window.cpu, []).append(window)
    index: Dict[int, Tuple[List[int], List[Activity]]] = {}
    for cpu, windows in by_cpu.items():
        windows.sort(key=lambda w: w.start)
        index[cpu] = ([w.start for w in windows], windows)
    return index


def _kact_is_noise_ref(
    act: Activity,
    meta: TraceMeta,
    windows: Dict[int, Tuple[List[int], List[Activity]]],
) -> bool:
    category = act.category
    if category in (NoiseCategory.SERVICE, NoiseCategory.TRACER):
        return False
    kind = meta.kind_of(act.pid)
    if kind == TaskKind.RANK:
        return True
    if kind == TaskKind.IDLE:
        return False
    entry = windows.get(act.cpu)
    if entry is None:
        return False
    starts, cpu_windows = entry
    idx = bisect.bisect_right(starts, act.start) - 1
    if idx < 0:
        return False
    window = cpu_windows[idx]
    return window.end > act.start and window.displaced_pid is not None


class ReferenceAnalysis:
    """Original loop-based :class:`~repro.core.analysis.NoiseAnalysis`.

    Keeps the pre-refactor semantics throughout, including the historical
    quirk the satellite fix removed: ``total_noise_ns`` / ``breakdown_ns``
    sum activities on *all* CPUs while ``per_cpu_noise_ns`` drops
    ``cpu >= ncpus``.  Differential tests generate traces whose CPUs are
    all in range, where the two pipelines agree exactly.
    """

    def __init__(
        self,
        trace: Union[Trace, np.ndarray],
        meta: Optional[TraceMeta] = None,
        span_ns: Optional[int] = None,
        ncpus: Optional[int] = None,
    ) -> None:
        if isinstance(trace, Trace):
            records = trace.records()
            self.ncpus = ncpus if ncpus is not None else trace.ncpus
            self.start_ts = trace.start_ts
            self.end_ts = trace.end_ts
        else:
            records = np.asarray(trace, dtype=RECORD_DTYPE)
            self.ncpus = ncpus if ncpus is not None else (
                int(records["cpu"].max()) + 1 if len(records) else 1
            )
            self.start_ts = int(records["time"].min()) if len(records) else 0
            self.end_ts = int(records["time"].max()) if len(records) else 0
        if span_ns is not None:
            self.end_ts = self.start_ts + span_ns
        self.span_ns = max(1, self.end_ts - self.start_ts)
        self.records = records
        self.meta = meta if meta is not None else TraceMeta()

        kacts = build_activities_ref(records, end_ts=self.end_ts)
        preemptions = build_preemptions_ref(
            records, self.meta, end_ts=self.end_ts, kact_activities=kacts
        )
        self.activities: List[Activity] = classify_activities_ref(
            kacts, preemptions, self.meta
        )

    # -- selection ------------------------------------------------------
    def select(
        self,
        event: Union[int, str, None] = None,
        category: Optional[NoiseCategory] = None,
        cpu: Optional[int] = None,
        noise_only: bool = False,
        include_truncated: bool = False,
    ) -> List[Activity]:
        event_id = _resolve_event_ref(event)
        out = []
        for act in self.activities:
            if event_id is not None and act.event != event_id:
                continue
            if category is not None and act.category != category:
                continue
            if cpu is not None and act.cpu != cpu:
                continue
            if noise_only and not act.is_noise:
                continue
            if not include_truncated and act.truncated:
                continue
            out.append(act)
        return out

    def durations(
        self,
        event: Union[int, str],
        cpu: Optional[int] = None,
        noise_only: bool = False,
    ) -> np.ndarray:
        acts = self.select(event=event, cpu=cpu, noise_only=noise_only)
        return np.array([a.self_ns for a in acts], dtype=np.int64)

    # -- tables ---------------------------------------------------------
    def stats(
        self, event: Union[int, str], noise_only: bool = False
    ) -> DurationStats:
        durations = self.durations(event, noise_only=noise_only)
        return describe_durations(durations, self.span_ns, cpus=self.ncpus)

    def stats_by_event(
        self, noise_only: bool = True
    ) -> Dict[str, DurationStats]:
        groups: Dict[str, List[int]] = {}
        for act in self.activities:
            if act.truncated:
                continue
            if noise_only and not act.is_noise:
                continue
            groups.setdefault(act.name, []).append(act.self_ns)
        return {
            name: describe_durations(values, self.span_ns, cpus=self.ncpus)
            for name, values in sorted(groups.items())
        }

    # -- breakdown ------------------------------------------------------
    def breakdown_ns(self) -> Dict[NoiseCategory, int]:
        totals: Dict[NoiseCategory, int] = {
            c: 0 for c in BREAKDOWN_CATEGORIES
        }
        for act in self.activities:
            if act.is_noise:
                totals[act.category] = (
                    totals.get(act.category, 0) + act.self_ns
                )
        return totals

    def total_noise_ns(self) -> int:
        return sum(a.self_ns for a in self.activities if a.is_noise)

    def noise_fraction(self) -> float:
        return self.total_noise_ns() / (self.span_ns * self.ncpus)

    def per_cpu_noise_ns(self) -> np.ndarray:
        out = np.zeros(self.ncpus, dtype=np.int64)
        for act in self.activities:
            if act.is_noise and act.cpu < self.ncpus:
                out[act.cpu] += act.self_ns
        return out

    def per_cpu_breakdown(self) -> "Dict[int, Dict[NoiseCategory, int]]":
        out: Dict[int, Dict[NoiseCategory, int]] = {
            cpu: {c: 0 for c in BREAKDOWN_CATEGORIES}
            for cpu in range(self.ncpus)
        }
        for act in self.activities:
            if act.is_noise and act.cpu < self.ncpus:
                per_cpu = out[act.cpu]
                per_cpu[act.category] = (
                    per_cpu.get(act.category, 0) + act.self_ns
                )
        return out

    # -- timelines ------------------------------------------------------
    def noise_timeline(
        self,
        quantum_ns: int,
        cpu: Optional[int] = None,
        t0: Optional[int] = None,
        t1: Optional[int] = None,
    ) -> np.ndarray:
        if quantum_ns <= 0:
            raise ValueError("quantum must be positive")
        t0 = self.start_ts if t0 is None else t0
        t1 = self.end_ts if t1 is None else t1
        n = max(1, -(-(t1 - t0) // quantum_ns))
        out = np.zeros(n, dtype=np.float64)
        for act in self.activities:
            if not act.is_noise or act.end <= t0 or act.start >= t1:
                continue
            if cpu is not None and act.cpu != cpu:
                continue
            total = act.total_ns if act.total_ns > 0 else 1
            density = act.self_ns / total
            first = max(0, (act.start - t0) // quantum_ns)
            last = min(n - 1, (act.end - 1 - t0) // quantum_ns)
            for q in range(first, last + 1):
                q_begin = t0 + q * quantum_ns
                q_end = q_begin + quantum_ns
                out[q] += act.overlap(q_begin, q_end) * density
        return out

    def user_time_cumulative(
        self, cpu: int, t0: int, t1: int
    ) -> "np.ndarray":
        marks: List[tuple] = []
        for act in self.activities:
            if act.cpu != cpu or act.depth != 0:
                continue
            if act.end <= t0 or act.start >= t1:
                continue
            marks.append((max(act.start, t0), min(act.end, t1)))
        marks.sort()
        merged: List[tuple] = []
        for begin, end in marks:
            if merged and begin <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((begin, end))
        rows = [(t0, 0)]
        user = 0
        cursor = t0
        for begin, end in merged:
            if begin > cursor:
                user += begin - cursor
                cursor = begin
            rows.append((begin, user))
            if end > cursor:
                cursor = end
            rows.append((cursor, user))
        if cursor < t1:
            user += t1 - cursor
        rows.append((t1, user))
        return np.array(rows, dtype=np.int64)


def _resolve_event_ref(event: Union[int, str, None]) -> Optional[int]:
    if event is None:
        return None
    if isinstance(event, str):
        if event == PREEMPT_NAME:
            return PREEMPT_EVENT
        try:
            return NAME_TO_EVENT[event]
        except KeyError:
            raise ValueError(f"unknown event name: {event!r}") from None
    return int(event)
