"""Composable activity filters (paper Section III-A: "developers concerned
about specific areas can use our infrastructure to drill down into any
particular area of interest by simply applying different filters").

Filters are callables ``Activity -> bool`` combinable with ``&``, ``|``
and ``~``; :func:`apply` runs them over an activity list.  The same filters
drive the Paraver exporter's masking (Figures 5 and 7 show traces with
everything but one event type filtered out).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Union

from repro.core.model import Activity, NoiseCategory
from repro.tracing.events import NAME_TO_EVENT


class Filter:
    """A composable predicate over activities."""

    def __init__(self, fn: Callable[[Activity], bool], label: str = "") -> None:
        self.fn = fn
        self.label = label or getattr(fn, "__name__", "filter")

    def __call__(self, act: Activity) -> bool:
        return self.fn(act)

    def __and__(self, other: "Filter") -> "Filter":
        return Filter(
            lambda a: self(a) and other(a), f"({self.label} & {other.label})"
        )

    def __or__(self, other: "Filter") -> "Filter":
        return Filter(
            lambda a: self(a) or other(a), f"({self.label} | {other.label})"
        )

    def __invert__(self) -> "Filter":
        return Filter(lambda a: not self(a), f"~{self.label}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Filter {self.label}>"


def by_event(*names_or_ids: Union[str, int]) -> Filter:
    """Keep activities of the given event types."""
    ids = set()
    for item in names_or_ids:
        if isinstance(item, str):
            if item == "preemption":
                from repro.core.model import PREEMPT_EVENT

                ids.add(PREEMPT_EVENT)
            elif item in NAME_TO_EVENT:
                ids.add(NAME_TO_EVENT[item])
            else:
                raise ValueError(f"unknown event name: {item!r}")
        else:
            ids.add(int(item))
    label = f"event in {sorted(ids)}"
    return Filter(lambda a: a.event in ids, label)


def by_category(*categories: NoiseCategory) -> Filter:
    cats = set(categories)
    return Filter(lambda a: a.category in cats, f"category in {sorted(c.value for c in cats)}")


def by_cpu(*cpus: int) -> Filter:
    cpu_set = set(cpus)
    return Filter(lambda a: a.cpu in cpu_set, f"cpu in {sorted(cpu_set)}")


def by_pid(*pids: int) -> Filter:
    pid_set = set(pids)
    return Filter(lambda a: a.pid in pid_set, f"pid in {sorted(pid_set)}")


def by_window(t0: int, t1: int) -> Filter:
    """Keep activities overlapping the window (Paraver-style zoom)."""
    return Filter(lambda a: a.end > t0 and a.start < t1, f"window [{t0},{t1})")


def noise_only() -> Filter:
    return Filter(lambda a: a.is_noise, "noise")


def min_duration(ns: int) -> Filter:
    return Filter(lambda a: a.self_ns >= ns, f"self >= {ns}ns")


def apply(
    activities: Iterable[Activity], *filters: Filter
) -> List[Activity]:
    """Apply all filters conjunctively."""
    out = []
    for act in activities:
        if all(f(act) for f in filters):
            out.append(act)
    return out
