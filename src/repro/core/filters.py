"""Composable activity filters (paper Section III-A: "developers concerned
about specific areas can use our infrastructure to drill down into any
particular area of interest by simply applying different filters").

Filters are callables ``Activity -> bool`` combinable with ``&``, ``|``
and ``~``; :func:`apply` runs them over an activity list **or** an
:class:`~repro.core.model.ActivityTable`.  Every builtin filter carries a
vectorized ``mask_fn`` evaluated column-wise on tables; hand-rolled
predicate filters fall back to evaluating the predicate over the
materialized rows.  The same filters drive the Paraver exporter's masking
(Figures 5 and 7 show traces with everything but one event type filtered
out).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Union

import numpy as np

from repro.core.model import (
    Activity,
    ActivityTable,
    CATEGORY_CODE,
    NoiseCategory,
)
from repro.tracing.events import NAME_TO_EVENT

MaskFn = Callable[[ActivityTable], np.ndarray]


class Filter:
    """A composable predicate over activities.

    ``fn`` decides row by row; ``mask_fn`` (when given) answers the same
    question for a whole :class:`ActivityTable` at once with a boolean
    column.  Combinators compose both forms, so chains of builtin filters
    stay fully vectorized.
    """

    def __init__(
        self,
        fn: Callable[[Activity], bool],
        label: str = "",
        mask_fn: Optional[MaskFn] = None,
    ) -> None:
        self.fn = fn
        self.label = label or getattr(fn, "__name__", "filter")
        self.mask_fn = mask_fn

    def __call__(self, act: Activity) -> bool:
        return self.fn(act)

    def mask(self, table: ActivityTable) -> np.ndarray:
        """Boolean row mask of the filter over a table."""
        if self.mask_fn is not None:
            return np.asarray(self.mask_fn(table), dtype=bool)
        return np.fromiter(
            (bool(self.fn(a)) for a in table.rows()),
            dtype=bool,
            count=len(table),
        )

    def __and__(self, other: "Filter") -> "Filter":
        return Filter(
            lambda a: self(a) and other(a),
            f"({self.label} & {other.label})",
            mask_fn=lambda t: self.mask(t) & other.mask(t),
        )

    def __or__(self, other: "Filter") -> "Filter":
        return Filter(
            lambda a: self(a) or other(a),
            f"({self.label} | {other.label})",
            mask_fn=lambda t: self.mask(t) | other.mask(t),
        )

    def __invert__(self) -> "Filter":
        return Filter(
            lambda a: not self(a), f"~{self.label}", mask_fn=lambda t: ~self.mask(t)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Filter {self.label}>"


def by_event(*names_or_ids: Union[str, int]) -> Filter:
    """Keep activities of the given event types."""
    ids = set()
    for item in names_or_ids:
        if isinstance(item, str):
            if item == "preemption":
                from repro.core.model import PREEMPT_EVENT

                ids.add(PREEMPT_EVENT)
            elif item in NAME_TO_EVENT:
                ids.add(NAME_TO_EVENT[item])
            else:
                raise ValueError(f"unknown event name: {item!r}")
        else:
            ids.add(int(item))
    label = f"event in {sorted(ids)}"
    id_arr = np.array(sorted(ids), dtype=np.int64)
    return Filter(
        lambda a: a.event in ids,
        label,
        mask_fn=lambda t: np.isin(t.event, id_arr),
    )


def by_category(*categories: NoiseCategory) -> Filter:
    cats = set(categories)
    codes = np.array(sorted(CATEGORY_CODE[c] for c in cats), dtype=np.int8)
    return Filter(
        lambda a: a.category in cats,
        f"category in {sorted(c.value for c in cats)}",
        mask_fn=lambda t: np.isin(t.category, codes),
    )


def by_cpu(*cpus: int) -> Filter:
    cpu_set = set(cpus)
    cpu_arr = np.array(sorted(cpu_set), dtype=np.int64)
    return Filter(
        lambda a: a.cpu in cpu_set,
        f"cpu in {sorted(cpu_set)}",
        mask_fn=lambda t: np.isin(t.cpu, cpu_arr),
    )


def by_pid(*pids: int) -> Filter:
    pid_set = set(pids)
    pid_arr = np.array(sorted(pid_set), dtype=np.int64)
    return Filter(
        lambda a: a.pid in pid_set,
        f"pid in {sorted(pid_set)}",
        mask_fn=lambda t: np.isin(t.pid, pid_arr),
    )


def by_window(t0: int, t1: int) -> Filter:
    """Keep activities overlapping the window (Paraver-style zoom)."""
    return Filter(
        lambda a: a.end > t0 and a.start < t1,
        f"window [{t0},{t1})",
        mask_fn=lambda t: (t.end > t0) & (t.start < t1),
    )


def noise_only() -> Filter:
    return Filter(
        lambda a: a.is_noise, "noise", mask_fn=lambda t: t.is_noise.copy()
    )


def min_duration(ns: int) -> Filter:
    return Filter(
        lambda a: a.self_ns >= ns,
        f"self >= {ns}ns",
        mask_fn=lambda t: t.self_ns >= ns,
    )


def combined_mask(table: ActivityTable, *filters: Filter) -> np.ndarray:
    """Conjunctive boolean mask of all filters over a table."""
    m = np.ones(len(table), dtype=bool)
    for f in filters:
        m &= f.mask(table)
    return m


def apply_table(table: ActivityTable, *filters: Filter) -> ActivityTable:
    """Apply all filters conjunctively, keeping the columnar form."""
    return table.take(combined_mask(table, *filters))


def apply(
    activities: Union[ActivityTable, Iterable[Activity]], *filters: Filter
) -> List[Activity]:
    """Apply all filters conjunctively; returns the matching activities."""
    if isinstance(activities, ActivityTable):
        return activities.rows(combined_mask(activities, *filters))
    out = []
    for act in activities:
        if all(f(act) for f in filters):
            out.append(act)
    return out
