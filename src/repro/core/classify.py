"""Noise vs. service classification.

The paper's definition (Section III-A): OS noise is every kernel activity
that (a) was **not explicitly requested** by the application (a ``read``
system call is service, a timer tick is not), and (b) occurred while an
application process was **runnable** — "we do not consider a kernel
interruption as noise if, when it occurs, a process is blocked waiting for
communication".

The runnable test per activity:

* context pid is an application rank → the rank was on-CPU, hence runnable;
* context pid is a daemon → noise only if the daemon had displaced a
  runnable rank (the preemption windows computed by
  :func:`repro.core.nesting.build_preemptions` know this);
* context pid is idle → no application was runnable on that CPU → not noise.

Activities of the tracer's own collection daemon are excluded entirely
(paper footnote 4).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Tuple

from repro.core.model import (
    Activity,
    EVENT_CATEGORY,
    NoiseCategory,
    PREEMPT_EVENT,
    TRACER_PREEMPT_EVENT,
    TraceMeta,
)
from repro.simkernel.task import TaskKind


def classify_activities(
    kacts: List[Activity],
    preemptions: List[Activity],
    meta: TraceMeta,
) -> List[Activity]:
    """Assign categories and noise flags in place; returns all activities
    merged and time-sorted."""
    windows = _preemption_index(preemptions)

    for act in kacts:
        act.category = EVENT_CATEGORY.get(act.event, NoiseCategory.OTHER)
        act.is_noise = _kact_is_noise(act, meta, windows)

    for window in preemptions:
        window.category = EVENT_CATEGORY.get(window.event, NoiseCategory.OTHER)
        window.is_noise = (
            window.event == PREEMPT_EVENT and window.displaced_pid is not None
        )

    merged = kacts + preemptions
    merged.sort(key=lambda a: (a.start, a.cpu, a.depth))
    return merged


def _preemption_index(
    preemptions: List[Activity],
) -> Dict[int, Tuple[List[int], List[Activity]]]:
    """Per-CPU sorted (starts, windows) for displaced-rank lookups."""
    by_cpu: Dict[int, List[Activity]] = {}
    for window in preemptions:
        if window.event in (PREEMPT_EVENT, TRACER_PREEMPT_EVENT):
            by_cpu.setdefault(window.cpu, []).append(window)
    index: Dict[int, Tuple[List[int], List[Activity]]] = {}
    for cpu, windows in by_cpu.items():
        windows.sort(key=lambda w: w.start)
        index[cpu] = ([w.start for w in windows], windows)
    return index


def _kact_is_noise(
    act: Activity,
    meta: TraceMeta,
    windows: Dict[int, Tuple[List[int], List[Activity]]],
) -> bool:
    category = act.category
    if category in (NoiseCategory.SERVICE, NoiseCategory.TRACER):
        return False
    kind = meta.kind_of(act.pid)
    if kind == TaskKind.RANK:
        # The interrupted application process was on-CPU: runnable.
        return True
    if kind == TaskKind.IDLE:
        # No application wanted this CPU (blocked on comm/I-O): not noise.
        return False
    # Daemon context: noise only if the daemon displaced a runnable rank —
    # then this activity delays that rank too.
    entry = windows.get(act.cpu)
    if entry is None:
        return False
    starts, cpu_windows = entry
    idx = bisect.bisect_right(starts, act.start) - 1
    if idx < 0:
        return False
    window = cpu_windows[idx]
    return window.end > act.start and window.displaced_pid is not None


def noise_activities(activities: List[Activity]) -> List[Activity]:
    """Only the activities classified as noise."""
    return [a for a in activities if a.is_noise]


def service_activities(activities: List[Activity]) -> List[Activity]:
    """Activities attributed to explicit application requests."""
    return [a for a in activities if a.category == NoiseCategory.SERVICE]
