"""Noise vs. service classification.

The paper's definition (Section III-A): OS noise is every kernel activity
that (a) was **not explicitly requested** by the application (a ``read``
system call is service, a timer tick is not), and (b) occurred while an
application process was **runnable** — "we do not consider a kernel
interruption as noise if, when it occurs, a process is blocked waiting for
communication".

The runnable test per activity:

* context pid is an application rank → the rank was on-CPU, hence runnable;
* context pid is a daemon → noise only if the daemon had displaced a
  runnable rank (the preemption windows computed by
  :func:`repro.core.nesting.build_preemption_table` know this);
* context pid is idle → no application was runnable on that CPU → not noise.

Activities of the tracer's own collection daemon are excluded entirely
(paper footnote 4).

Classification is columnar: categories come from an event-id lookup table,
the context kind from one ``np.unique`` pass over pids, and the
displaced-rank test from a per-CPU ``searchsorted`` against the preemption
windows.  :func:`classify_activities` remains the object-path wrapper: it
mutates the given ``Activity`` objects in place and returns them merged and
time-sorted, exactly as before.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro import obs
from repro.core.model import (
    Activity,
    ActivityTable,
    CATEGORY_CODE,
    CATEGORY_ORDER,
    EVENT_CATEGORY,
    NoiseCategory,
    PREEMPT_EVENT,
    TRACER_PREEMPT_EVENT,
    TraceMeta,
)
from repro.simkernel.task import TaskKind

#: event id -> category code (covers the full u2 event-id space).
_CATEGORY_LUT = np.full(
    65536, CATEGORY_CODE[NoiseCategory.OTHER], dtype=np.int8
)
for _ev, _cat in EVENT_CATEGORY.items():
    _CATEGORY_LUT[int(_ev)] = CATEGORY_CODE[_cat]

_SERVICE = CATEGORY_CODE[NoiseCategory.SERVICE]
_TRACER = CATEGORY_CODE[NoiseCategory.TRACER]

#: Public aliases so the streaming engine (:mod:`repro.stream`) classifies
#: with the exact same tables the batch path uses.
CATEGORY_LUT = _CATEGORY_LUT
SERVICE_CODE = _SERVICE
TRACER_CODE = _TRACER


def classify_table(
    kacts: ActivityTable,
    preemptions: ActivityTable,
    meta: TraceMeta,
) -> ActivityTable:
    """Assign categories and noise flags on both tables in place; returns
    one merged, time-sorted table."""
    with obs.span("classify"):
        _classify_inplace(kacts, preemptions, meta)
        merged = np.concatenate([kacts.data, preemptions.data])
        order = np.lexsort((merged["depth"], merged["cpu"], merged["start"]))
        if obs.enabled():
            obs.counter("classify.activities").inc(len(merged))
            obs.counter("classify.noise_activities").inc(
                int(merged["is_noise"].sum())
            )
        return ActivityTable(merged[order], meta=meta)


def _classify_inplace(
    kacts: ActivityTable, preemptions: ActivityTable, meta: TraceMeta
) -> None:
    kd = kacts.data
    pd = preemptions.data

    # Preemption windows: category from the pseudo event id; noise unless
    # caused by the tracer daemon or nobody was displaced.
    pd["category"] = _CATEGORY_LUT[pd["event"]]
    pd["is_noise"] = (pd["event"] == PREEMPT_EVENT) & (
        pd["displaced_pid"] >= 0
    )

    if not len(kd):
        return
    kd["category"] = _CATEGORY_LUT[kd["event"]]
    cats = kd["category"]
    eligible = (cats != _SERVICE) & (cats != _TRACER)

    # Context kind per pid (one meta lookup per distinct pid).
    uniq, inv = np.unique(kd["pid"], return_inverse=True)
    kind_by_pid = np.array(
        [int(meta.kind_of(int(p))) for p in uniq], dtype=np.int8
    )
    kinds = kind_by_pid[inv]
    is_rank = kinds == int(TaskKind.RANK)
    is_idle = kinds == int(TaskKind.IDLE)

    noise = eligible & is_rank
    daemon_rows = np.flatnonzero(eligible & ~is_rank & ~is_idle)
    if len(daemon_rows) and len(pd):
        # Daemon context: noise only if the daemon displaced a runnable
        # rank — then this activity delays that rank too.  The covering
        # window is the last one starting at or before the activity.
        wmask = (pd["event"] == PREEMPT_EVENT) | (
            pd["event"] == TRACER_PREEMPT_EVENT
        )
        for cpu in np.unique(kd["cpu"][daemon_rows]):
            wsel = wmask & (pd["cpu"] == cpu)
            if not wsel.any():
                continue
            ws = pd["start"][wsel]
            worder = np.argsort(ws, kind="stable")
            ws = ws[worder]
            we = pd["end"][wsel][worder]
            wdisp = pd["displaced_pid"][wsel][worder]
            rows = daemon_rows[kd["cpu"][daemon_rows] == cpu]
            starts = kd["start"][rows]
            idx = np.searchsorted(ws, starts, side="right") - 1
            ok = idx >= 0
            hit = np.zeros(len(rows), dtype=bool)
            hit[ok] = (we[idx[ok]] > starts[ok]) & (wdisp[idx[ok]] >= 0)
            noise[rows[hit]] = True
    kd["is_noise"] = noise


def classify_activities(
    kacts: List[Activity],
    preemptions: List[Activity],
    meta: TraceMeta,
) -> List[Activity]:
    """Object-path wrapper: assign categories and noise flags in place;
    returns all activities merged and time-sorted."""
    kt = ActivityTable.from_rows(kacts, meta=meta)
    pt = ActivityTable.from_rows(preemptions, meta=meta)
    _classify_inplace(kt, pt, meta)
    for act, code, flag in zip(  # noiselint: disable=HOT001 -- object-path compat wrapper, not the columnar hot path
        kacts,
        kt.data["category"].tolist(),
        kt.data["is_noise"].tolist(),
    ):
        act.category = CATEGORY_ORDER[code]
        act.is_noise = flag
    for window, code, flag in zip(  # noiselint: disable=HOT001 -- object-path compat wrapper, not the columnar hot path
        preemptions,
        pt.data["category"].tolist(),
        pt.data["is_noise"].tolist(),
    ):
        window.category = CATEGORY_ORDER[code]
        window.is_noise = flag
    merged = kacts + preemptions
    merged.sort(key=lambda a: (a.start, a.cpu, a.depth))
    return merged


def noise_mask(table: ActivityTable) -> np.ndarray:
    """Boolean mask of the rows classified as noise."""
    return table.data["is_noise"].copy()


def noise_activities(activities: List[Activity]) -> List[Activity]:
    """Only the activities classified as noise."""
    return [a for a in activities if a.is_noise]


def service_activities(activities: List[Activity]) -> List[Activity]:
    """Activities attributed to explicit application requests."""
    return [a for a in activities if a.category == NoiseCategory.SERVICE]
