"""Data model of the offline noise analysis.

An :class:`Activity` is one reconstructed kernel activity instance — a timer
interrupt, one ``run_timer_softirq`` execution, a page fault, or a pseudo
activity derived from scheduler events (a daemon preempting a rank).  The
paper's key accounting subtlety lives here: activities *nest* (an interrupt
during an exception handler), so each activity has both a **total** duration
(wall time from entry to exit) and a **self** duration (total minus nested
children).  Statistics use self time so nothing is double counted.

The analysis pipeline stores activities columnar: :class:`ActivityTable` is
one numpy structured array built once per trace and queried with masks.
The :class:`Activity` dataclass survives as a per-row view (materialized
lazily via :meth:`ActivityTable.rows`) so object-shaped consumers keep
working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.simkernel.task import TaskKind
from repro.tracing.events import Ev, event_name

#: Pseudo event id for scheduler-derived preemption activities.
PREEMPT_EVENT = 100
#: Pseudo event id for preemptions by the tracer's own daemon (excluded
#: from noise totals, following the paper's footnote 4).
TRACER_PREEMPT_EVENT = 101


class NoiseCategory(Enum):
    """The paper's five noise categories (Section IV-A) plus bookkeeping."""

    PERIODIC = "periodic"        # timer interrupt + run_timer_softirq
    PAGE_FAULT = "page fault"    # page fault exception handler
    SCHEDULING = "scheduling"    # schedule() + rcu + run_rebalance_domains
    PREEMPTION = "preemption"    # daemons displacing application processes
    IO = "io"                    # net irq handler + rx/tx tasklets
    SERVICE = "service"          # requested by the app (syscalls): not noise
    TRACER = "tracer"            # lttng-noise's own daemon: excluded
    OTHER = "other"


#: Category of each paired kernel event.
EVENT_CATEGORY: Dict[int, NoiseCategory] = {
    Ev.IRQ_TIMER: NoiseCategory.PERIODIC,
    Ev.SOFTIRQ_TIMER: NoiseCategory.PERIODIC,
    Ev.EXC_PAGE_FAULT: NoiseCategory.PAGE_FAULT,
    Ev.SCHED_CALL: NoiseCategory.SCHEDULING,
    Ev.SOFTIRQ_RCU: NoiseCategory.SCHEDULING,
    Ev.SOFTIRQ_SCHED: NoiseCategory.SCHEDULING,
    Ev.IRQ_NET: NoiseCategory.IO,
    Ev.TASKLET_NET_RX: NoiseCategory.IO,
    Ev.TASKLET_NET_TX: NoiseCategory.IO,
    Ev.SYSCALL: NoiseCategory.SERVICE,
    Ev.TRACER_FLUSH: NoiseCategory.TRACER,
    Ev.INJECTED: NoiseCategory.OTHER,
    PREEMPT_EVENT: NoiseCategory.PREEMPTION,
    TRACER_PREEMPT_EVENT: NoiseCategory.TRACER,
}

#: The five categories shown in Figure 3, in the paper's order.
BREAKDOWN_CATEGORIES: Tuple[NoiseCategory, ...] = (
    NoiseCategory.PERIODIC,
    NoiseCategory.PAGE_FAULT,
    NoiseCategory.SCHEDULING,
    NoiseCategory.PREEMPTION,
    NoiseCategory.IO,
)

#: Stable integer codes for the ``category`` column of an ActivityTable.
CATEGORY_ORDER: Tuple[NoiseCategory, ...] = tuple(NoiseCategory)
CATEGORY_CODE: Dict[NoiseCategory, int] = {
    c: i for i, c in enumerate(CATEGORY_ORDER)
}

#: Column layout of the columnar activity store.  ``displaced_pid`` uses -1
#: as the "not a preemption window" sentinel (the dataclass shows None).
ACTIVITY_DTYPE = np.dtype(
    [
        ("event", "<i4"),
        ("cpu", "<i4"),
        ("pid", "<i4"),
        ("start", "<i8"),
        ("end", "<i8"),
        ("total_ns", "<i8"),
        ("self_ns", "<i8"),
        ("depth", "<i4"),
        ("arg", "<u8"),
        ("category", "i1"),
        ("is_noise", "?"),
        ("truncated", "?"),
        ("displaced_pid", "<i8"),
    ]
)


@dataclass
class Activity:
    """One reconstructed kernel activity instance."""

    event: int
    name: str
    cpu: int
    #: Context pid: whose execution this activity sat on top of.
    pid: int
    start: int
    end: int
    #: Wall duration (end - start).
    total_ns: int
    #: Duration minus nested children (what this activity itself consumed).
    self_ns: int
    #: Nesting depth (0 = directly above the context frame).
    depth: int = 0
    arg: int = 0
    #: For preemption pseudo-activities: the displaced application pid.
    displaced_pid: Optional[int] = None
    #: True when the trace ended before the activity's EXIT record.
    truncated: bool = False
    category: NoiseCategory = NoiseCategory.OTHER
    #: Does this activity count as OS noise (classify.py decides)?
    is_noise: bool = False

    def overlap(self, begin: int, end: int) -> int:
        """Wall-clock overlap of this activity with a window, in ns."""
        return max(0, min(self.end, end) - max(self.start, begin))


class ActivityTable:
    """Columnar store of reconstructed activities: one structured array.

    The analysis pipeline builds the table once per trace and answers every
    query with column masks (``np.bincount`` / ``searchsorted`` /
    ``np.add.at``) instead of iterating Python objects.  The
    :class:`Activity` dataclass remains the compatibility view: ``rows()``
    materializes (a masked subset of) the table as dataclass instances,
    so list-shaped consumers keep working.

    ``meta`` is kept so preemption pseudo-activities can resolve their
    ``preempt:<daemon>`` display names.
    """

    __slots__ = ("data", "meta", "_names")

    def __init__(
        self, data: np.ndarray, meta: Optional["TraceMeta"] = None
    ) -> None:
        self.data = np.asarray(data, dtype=ACTIVITY_DTYPE)
        self.meta = meta
        self._names: Optional[np.ndarray] = None

    # -- construction ---------------------------------------------------
    @classmethod
    def empty(cls, meta: Optional["TraceMeta"] = None) -> "ActivityTable":
        return cls(np.zeros(0, dtype=ACTIVITY_DTYPE), meta=meta)

    @classmethod
    def from_columns(
        cls, n: int, meta: Optional["TraceMeta"] = None, **columns
    ) -> "ActivityTable":
        """Build a table from per-column sequences (missing columns get
        their neutral defaults: category OTHER, displaced_pid -1)."""
        data = np.zeros(n, dtype=ACTIVITY_DTYPE)
        data["category"] = CATEGORY_CODE[NoiseCategory.OTHER]
        data["displaced_pid"] = -1
        for name, values in columns.items():
            data[name] = values
        return cls(data, meta=meta)

    @classmethod
    def from_rows(
        cls,
        activities: Sequence[Activity],
        meta: Optional["TraceMeta"] = None,
    ) -> "ActivityTable":
        """Columnar form of an Activity list, preserving order."""
        data = np.zeros(len(activities), dtype=ACTIVITY_DTYPE)
        for i, a in enumerate(activities):
            data[i] = (
                a.event,
                a.cpu,
                a.pid,
                a.start,
                a.end,
                a.total_ns,
                a.self_ns,
                a.depth,
                a.arg,
                CATEGORY_CODE[a.category],
                a.is_noise,
                a.truncated,
                -1 if a.displaced_pid is None else a.displaced_pid,
            )
        return cls(data, meta=meta)

    # -- column access ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.data)

    def __getattr__(self, name: str) -> np.ndarray:
        # Column views: table.start, table.self_ns, table.is_noise, ...
        try:
            return self.data[name]
        except (KeyError, ValueError):
            raise AttributeError(name) from None

    def take(self, index: np.ndarray) -> "ActivityTable":
        """Sub-table of the given indices or boolean mask."""
        return ActivityTable(self.data[index], meta=self.meta)

    def mask(
        self,
        event: Optional[int] = None,
        category: Optional[NoiseCategory] = None,
        cpu: Optional[int] = None,
        noise_only: bool = False,
        include_truncated: bool = True,
    ) -> np.ndarray:
        """Boolean row mask for the standard selection axes."""
        m = np.ones(len(self.data), dtype=bool)
        if event is not None:
            m &= self.data["event"] == event
        if category is not None:
            m &= self.data["category"] == CATEGORY_CODE[category]
        if cpu is not None:
            m &= self.data["cpu"] == cpu
        if noise_only:
            m &= self.data["is_noise"]
        if not include_truncated:
            m &= ~self.data["truncated"]
        return m

    # -- row views -------------------------------------------------------
    def names(self) -> np.ndarray:
        """Display name per row (object array, cached).

        Paired kernel activities map through :func:`event_name`;
        preemption pseudo-activities render as ``preempt:<daemon name>``
        using the attached :class:`TraceMeta`.
        """
        if self._names is None:
            events = self.data["event"]
            uniq, inv = np.unique(events, return_inverse=True)
            base = np.array(
                [event_name(int(e)) for e in uniq], dtype=object
            )
            names = base[inv] if len(uniq) else np.zeros(0, dtype=object)
            pm = (events == PREEMPT_EVENT) | (events == TRACER_PREEMPT_EVENT)
            if pm.any():
                meta = self.meta if self.meta is not None else TraceMeta()
                pids = self.data["pid"][pm].tolist()
                cache: Dict[int, str] = {}
                names[np.flatnonzero(pm)] = [
                    cache.get(p) or cache.setdefault(
                        p, f"preempt:{meta.name_of(p)}"
                    )
                    for p in pids
                ]
            self._names = names
        return self._names

    def rows(self, mask: Optional[np.ndarray] = None) -> List[Activity]:
        """Materialize (a masked subset of) the table as Activity objects."""
        data = self.data if mask is None else self.data[mask]
        names = self.names() if mask is None else self.names()[mask]
        cats = CATEGORY_ORDER
        out: List[Activity] = []
        for i, (
            event, cpu, pid, start, end, total, self_ns, depth, arg,
            code, is_noise, truncated, displaced,
        ) in enumerate(data.tolist()):
            out.append(
                Activity(
                    event=event,
                    name=names[i],
                    cpu=cpu,
                    pid=pid,
                    start=start,
                    end=end,
                    total_ns=total,
                    self_ns=self_ns,
                    depth=depth,
                    arg=arg,
                    displaced_pid=None if displaced < 0 else displaced,
                    truncated=truncated,
                    category=cats[code],
                    is_noise=is_noise,
                )
            )
        return out

    def row(self, i: int) -> Activity:
        return self.rows(np.asarray([i]))[0]

    def __iter__(self) -> Iterator[Activity]:
        return iter(self.rows())


@dataclass
class Interruption:
    """A maximal group of temporally-adjacent noise activities on one CPU.

    This is what the synthetic OS noise chart plots: FTQ perceives one
    "spike", the trace decomposes it into components (Figure 1b/1d).
    """

    cpu: int
    start: int
    end: int
    activities: List[Activity] = field(default_factory=list)

    @property
    def noise_ns(self) -> int:
        """Total noise of the interruption (sum of component self-times)."""
        return sum(a.self_ns for a in self.activities)

    @property
    def span_ns(self) -> int:
        return self.end - self.start

    def signature(self) -> Tuple[str, ...]:
        """Ordered component names — the interruption's *composition*.

        Two interruptions with equal durations but different signatures are
        exactly what Section V disambiguates.
        """
        return tuple(a.name for a in sorted(self.activities, key=lambda a: a.start))

    def describe(self) -> str:
        parts = ", ".join(
            f"{a.name} ({a.self_ns} ns)"
            for a in sorted(self.activities, key=lambda a: a.start)
        )
        return f"[{self.start}-{self.end}] cpu{self.cpu}: {parts}"


@dataclass(frozen=True)
class TaskInfo:
    pid: int
    name: str
    kind: TaskKind


class TraceMeta:
    """Sidecar metadata: pid -> task identity.

    Trace records carry pids only; names and kinds (rank vs. kernel daemon
    vs. the tracer daemon) come from this table.  When absent, the analyzer
    falls back to the node's pid-allocation convention (ranks >= 1000,
    daemons 100-999, idle 0).
    """

    def __init__(self, tasks: Optional[Dict[int, TaskInfo]] = None) -> None:
        self.tasks: Dict[int, TaskInfo] = dict(tasks or {})

    @staticmethod
    def from_node(node) -> "TraceMeta":
        tasks = {
            t.pid: TaskInfo(t.pid, t.name, t.kind) for t in node.tasks.values()
        }
        for idle in node.idle_tasks:
            tasks.setdefault(idle.pid, TaskInfo(idle.pid, idle.name, idle.kind))
        return TraceMeta(tasks)

    # ------------------------------------------------------------------
    # Serialization (the sidecar file next to a binary trace)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        import json

        return json.dumps(
            {
                "tasks": [
                    {"pid": t.pid, "name": t.name, "kind": int(t.kind)}
                    for t in sorted(self.tasks.values(), key=lambda t: t.pid)
                ]
            },
            indent=2,
        )

    @staticmethod
    def from_json(text: str) -> "TraceMeta":
        import json

        data = json.loads(text)
        tasks = {}
        for entry in data.get("tasks", []):
            info = TaskInfo(
                int(entry["pid"]), str(entry["name"]), TaskKind(int(entry["kind"]))
            )
            tasks[info.pid] = info
        return TraceMeta(tasks)

    def to_file(self, path: str) -> None:
        with open(path, "w") as fp:
            fp.write(self.to_json())

    @staticmethod
    def from_file(path: str) -> "TraceMeta":
        with open(path) as fp:
            return TraceMeta.from_json(fp.read())

    # ------------------------------------------------------------------
    def kind_of(self, pid: int) -> TaskKind:
        info = self.tasks.get(pid)
        if info is not None:
            return info.kind
        if pid == 0:
            return TaskKind.IDLE
        if pid >= 1000:
            return TaskKind.RANK
        return TaskKind.KDAEMON

    def name_of(self, pid: int) -> str:
        info = self.tasks.get(pid)
        if info is not None:
            return info.name
        if pid == 0:
            return "swapper"
        return f"pid{pid}"

    def is_application(self, pid: int) -> bool:
        return self.kind_of(pid) == TaskKind.RANK

    def is_tracer(self, pid: int) -> bool:
        return self.kind_of(pid) == TaskKind.TRACERD

    def application_pids(self) -> List[int]:
        return sorted(
            pid for pid in self.tasks if self.kind_of(pid) == TaskKind.RANK
        )
