"""Nested-activity reconstruction from raw trace records.

Two reconstruction passes over the record stream:

1. **Paired activities** (:func:`build_activity_table`): a per-CPU stack
   matches ENTRY/EXIT records, attributing *self time* (total minus nested
   children) to every activity.  "We took particular care of nested events
   ... handling nested events is particularly important for obtaining
   correct statistics" — this is that care.

2. **Preemption windows** (:func:`build_preemption_table`): scheduler point
   events (``sched_switch`` / ``task_state``) are folded into pseudo
   activities covering every interval in which a daemon held a CPU while a
   displaced application rank was runnable.  Their self time likewise
   excludes kernel activities nested inside the window.

Both passes are columnar: the (inherently sequential) stack walk runs over
plain Python lists extracted from the record array and writes per-column
buffers that become one :class:`~repro.core.model.ActivityTable`; nested
time subtraction is a ``searchsorted`` + prefix-sum over the sorted depth-0
intervals.  :func:`build_activities` / :func:`build_preemptions` remain as
object-path compatibility wrappers returning ``Activity`` lists.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.model import (
    Activity,
    ActivityTable,
    PREEMPT_EVENT,
    TRACER_PREEMPT_EVENT,
    TraceMeta,
)
from repro.simkernel.task import TaskKind, TaskState
from repro.tracing.events import (
    Ev,
    FIRST_POINT_EVENT,
    Flag,
    event_name,
)

#: ``(cpu, gap_ts, pos)`` lost-event gap markers, positionally anchored in
#: the record array handed to :func:`build_activity_table` — see
#: :meth:`repro.tracing.ctf.Trace.records_with_gaps`.
GapMarkers = Sequence[Tuple[int, int, int]]


def build_activity_table(
    records: np.ndarray,
    end_ts: Optional[int] = None,
    strict: bool = False,
    meta: Optional[TraceMeta] = None,
    gaps: Optional[GapMarkers] = None,
) -> ActivityTable:
    """Reconstruct paired kernel activities into a columnar table.

    Parameters
    ----------
    records:
        Structured array (``RECORD_DTYPE``), globally time-sorted or not —
        per-CPU order is what matters and per-CPU streams are in order.
    end_ts:
        Trace end; open activities are truncated here and flagged.
    strict:
        Raise on unmatched EXIT records instead of skipping them.
    meta:
        Optional task metadata attached to the table (used for display
        names of preemption rows once tables are merged).
    gaps:
        Lost-event gap markers ``(cpu, gap_ts, pos)``: before the record
        at index ``pos`` an unknown number of events on ``cpu`` was lost.
        Open activities on that CPU are truncated at ``gap_ts`` and the
        stack resynchronizes (post-gap orphan EXITs are skipped), instead
        of letting a post-gap EXIT silently close a pre-gap frame.
    """
    with obs.span("nesting"):
        if end_ts is None and len(records):
            end_ts = int(records["time"].max())

        paired = records["event"] < FIRST_POINT_EVENT
        sel = records[paired]
        if gaps:
            # Gap resync is inherently sequential: take the stack walk
            # directly, with markers translated to the paired subset.
            kept = np.flatnonzero(paired)
            sel_gaps = [
                (cpu, gap_ts, int(np.searchsorted(kept, pos, side="left")))
                for cpu, gap_ts, pos in gaps
            ]
            table = _match_frames_walk(sel, end_ts, strict, meta, sel_gaps)
        else:
            table = _match_frames_vectorized(sel, end_ts, meta)
            if table is None:
                # Malformed stream (unmatched or mismatched EXITs): fall
                # back to the sequential stack walk.  The counter makes the
                # rate of this slow path a first-class signal.
                if obs.enabled():
                    obs.counter("nesting.stack_walk_fallback").inc()
                table = _match_frames_walk(sel, end_ts, strict, meta)
        order = np.lexsort(
            (table.data["depth"], table.data["cpu"], table.data["start"])
        )
        return table.take(order)


def _match_frames_vectorized(
    sel: np.ndarray, end_ts: Optional[int], meta: Optional[TraceMeta]
) -> Optional[ActivityTable]:
    """Branch-free ENTRY/EXIT matching for well-formed streams.

    Within one CPU, tokens that share a frame depth strictly alternate
    ENTRY, EXIT, ENTRY, ... — a frame at depth d must close before the next
    frame at depth d can open — so matching reduces to a stable sort by
    (cpu, frame depth) and pairing consecutive tokens.  Nested time is then
    a searchsorted + prefix-sum of each depth level's children.

    Returns ``None`` when the stream is not well formed (an EXIT with no
    open frame, or one whose event does not match the frame it would
    close); those traces take :func:`_match_frames_walk`, which implements
    the skip/strict semantics.
    """
    n = len(sel)
    if n == 0:
        return ActivityTable.empty(meta=meta)
    flag = sel["flag"]
    is_entry = flag == int(Flag.ENTRY)
    keep = is_entry | (flag == int(Flag.EXIT))
    if not keep.all():
        sel = sel[keep]
        is_entry = is_entry[keep]
        n = len(sel)
        if n == 0:
            return ActivityTable.empty(meta=meta)

    # Stable sort by CPU: per-CPU streams are already in time order.
    co = np.argsort(sel["cpu"], kind="stable")
    cpu = sel["cpu"][co].astype(np.int64)
    time_ = sel["time"][co].astype(np.int64)
    event = sel["event"][co].astype(np.int64)
    pid = sel["pid"][co].astype(np.int64)
    arg = sel["arg"][co]
    is_entry = is_entry[co]

    # Running stack depth within each CPU segment.
    new_seg = np.empty(n, dtype=bool)
    new_seg[0] = True
    np.not_equal(cpu[1:], cpu[:-1], out=new_seg[1:])
    seg_heads = np.flatnonzero(new_seg)
    depth_after = np.cumsum(np.where(is_entry, 1, -1))
    base = np.zeros(len(seg_heads), dtype=np.int64)
    base[1:] = depth_after[seg_heads[1:] - 1]
    seg_len = np.diff(np.append(seg_heads, n))
    depth_after = depth_after - np.repeat(base, seg_len)
    if depth_after.min() < 0:
        return None  # an EXIT with no open frame
    fd = depth_after - is_entry  # frame depth: c-1 for ENTRY, c for EXIT

    # Group by (cpu, frame depth); inside a group tokens must alternate
    # ENTRY (even offset) / EXIT (odd offset), optionally ending on an
    # ENTRY left open by the end of tracing.
    stride = int(fd.max()) + 1
    go = np.argsort(cpu * stride + fd, kind="stable")
    key = (cpu * stride + fd)[go]
    g_new = np.empty(n, dtype=bool)
    g_new[0] = True
    np.not_equal(key[1:], key[:-1], out=g_new[1:])
    g_heads = np.flatnonzero(g_new)
    g_len = np.diff(np.append(g_heads, n))
    offset = np.arange(n) - np.repeat(g_heads, g_len)
    even = offset % 2 == 0
    if not np.array_equal(is_entry[go], even):
        return None  # broken alternation: some EXIT was skipped
    exits_g = np.flatnonzero(~even)
    ent = go[exits_g - 1]
    ex = go[exits_g]
    if not np.array_equal(event[ent], event[ex]):
        return None  # EXIT closing a different event's frame

    # Closed frames, ordered like the walk's appends (EXIT-record order)
    # so the final stable sort keeps identical tie order.
    closed_order = np.argsort(co[ex], kind="stable")
    ent = ent[closed_order]
    ex = ex[closed_order]
    cl_start = time_[ent]
    cl_end = time_[ex]
    cl_total = cl_end - cl_start
    cl_cpu = cpu[ex]
    cl_depth = fd[ex]

    # Open frames: the unpaired trailing ENTRY of a (cpu, depth) group.
    last_g = np.zeros(n, dtype=bool)
    last_g[g_heads + g_len - 1] = True
    tr = go[even & last_g]
    tr = tr[np.lexsort((fd[tr], cpu[tr]))]
    tr_start = time_[tr]
    tr_total = np.maximum(0, int(end_ts) - tr_start)
    tr_cpu = cpu[tr]
    tr_depth = fd[tr]

    # Nested time: each parent subtracts its direct children's totals.
    # Only *closed* children count (the walk adds a child's total to its
    # parent when the child pops; frames still open at end_ts never pop).
    # An open frame at depth d owns every later closed frame at d+1.
    nested_cl = np.zeros(len(ent), dtype=np.int64)
    nested_tr = np.zeros(len(tr), dtype=np.int64)
    for cpu_v in np.unique(cl_cpu).tolist():
        cmask = cl_cpu == cpu_v
        tmask = tr_cpu == cpu_v
        for d in range(int(cl_depth[cmask].max())):
            ch = np.flatnonzero(cmask & (cl_depth == d + 1))
            if not len(ch):
                continue
            ch = ch[np.argsort(cl_start[ch], kind="stable")]
            cs = cl_start[ch]
            prefix = np.zeros(len(ch) + 1, dtype=np.int64)
            np.cumsum(cl_total[ch], out=prefix[1:])
            pm = np.flatnonzero(cmask & (cl_depth == d))
            if len(pm):
                lo = np.searchsorted(cs, cl_start[pm], side="left")
                hi = np.searchsorted(cs, cl_end[pm], side="left")
                nested_cl[pm] = prefix[hi] - prefix[lo]
            tm = np.flatnonzero(tmask & (tr_depth == d))
            if len(tm):
                lo = np.searchsorted(cs, tr_start[tm], side="left")
                nested_tr[tm] = prefix[-1] - prefix[lo]

    n_cl = len(ent)
    total_out = np.concatenate([cl_total, tr_total])
    self_out = np.maximum(
        0, total_out - np.concatenate([nested_cl, nested_tr])
    )
    trunc_out = np.zeros(len(total_out), dtype=bool)
    trunc_out[n_cl:] = True
    return ActivityTable.from_columns(
        len(total_out),
        meta=meta,
        event=np.concatenate([event[ent], event[tr]]),
        cpu=np.concatenate([cl_cpu, tr_cpu]),
        pid=np.concatenate([pid[ent], pid[tr]]),
        start=np.concatenate([cl_start, tr_start]),
        end=np.concatenate(
            [cl_end, np.full(len(tr), int(end_ts), dtype=np.int64)]
        ),
        total_ns=total_out,
        self_ns=self_out,
        depth=np.concatenate([cl_depth, tr_depth]),
        arg=np.concatenate([arg[ent], arg[tr]]),
        truncated=trunc_out,
    )


class ActivityStackWalker:
    """Incremental per-CPU ENTRY/EXIT matcher — the sequential core of
    activity reconstruction, shared by the batch fallback walk and the
    streaming engine.

    Feed records one at a time (per-CPU time order is what matters); each
    matched EXIT, lost-event gap, or final truncation emits a 10-tuple
    ``(event, cpu, pid, start, end, total_ns, self_ns, depth, arg,
    truncated)`` via ``on_row`` (default: append to :attr:`rows`).  State
    carries across calls, which is what lets a streaming window hand its
    open frames forward to the next window for free.
    """

    __slots__ = ("rows", "_emit", "_stacks", "_strict")

    def __init__(
        self,
        strict: bool = False,
        on_row: Optional[Callable[[tuple], None]] = None,
    ) -> None:
        self.rows: List[tuple] = []
        self._emit = on_row if on_row is not None else self.rows.append
        # Per-CPU stacks of open frames: [event, start, pid, arg, nested].
        self._stacks: Dict[int, List[List[int]]] = {}
        self._strict = strict

    def feed(
        self, t: int, event: int, cpu: int, flag: int, pid: int, arg: int
    ) -> None:
        stack = self._stacks.get(cpu)
        if stack is None:
            stack = self._stacks[cpu] = []
        if flag == _ENTRY:
            stack.append([event, t, pid, arg, 0])
        elif flag == _EXIT:
            if not stack or stack[-1][0] != event:
                if self._strict:
                    raise ValueError(
                        f"unmatched EXIT for {event_name(event)} "
                        f"on cpu{cpu} at t={t}"
                    )
                return
            frame = stack.pop()
            start = frame[1]
            total = t - start
            self_ns = total - frame[4]
            if stack:
                stack[-1][4] += total
            self._emit((
                event, cpu, frame[2], start, t, total,
                self_ns if self_ns > 0 else 0, len(stack), frame[3], False,
            ))

    def gap(self, cpu: int, gap_ts: int) -> None:
        """Resynchronize after lost events on ``cpu``.

        Records were lost up to ``gap_ts`` (the first timestamp known good
        after the loss), so any open frame's EXIT may be gone: truncate
        every open frame at the gap boundary — mirroring end-of-trace
        truncation, per the ring-buffer tail-flush invariant — and clear
        the stack so post-gap orphan EXITs are skipped as unmatched
        instead of closing pre-gap frames.
        """
        stack = self._stacks.get(cpu)
        if not stack:
            return
        for depth, frame in enumerate(stack):
            total = gap_ts - frame[1]
            if total < 0:
                total = 0
            self_ns = total - frame[4]
            self._emit((
                frame[0], cpu, frame[2], frame[1], gap_ts, total,
                self_ns if self_ns > 0 else 0, depth, frame[3], True,
            ))
        del stack[:]

    def open_depth(self, cpu: int) -> int:
        """Number of open frames on ``cpu``."""
        stack = self._stacks.get(cpu)
        return len(stack) if stack else 0

    def open_cpus(self) -> List[int]:
        """CPUs that currently have at least one open frame."""
        return [cpu for cpu, stack in self._stacks.items() if stack]

    def oldest_open_start(self, cpu: int) -> Optional[int]:
        """Start of the deepest (earliest) open frame on ``cpu``, if any."""
        stack = self._stacks.get(cpu)
        return stack[0][1] if stack else None

    def depth0_open_start(self, cpu: int) -> Optional[int]:
        """Start of the open depth-0 frame on ``cpu``, if any."""
        return self.oldest_open_start(cpu)

    def finish(self, end_ts: int) -> None:
        """Truncate whatever the end of tracing interrupted."""
        for cpu, stack in self._stacks.items():
            for depth, frame in enumerate(stack):
                total = end_ts - frame[1]
                if total < 0:
                    total = 0
                self_ns = total - frame[4]
                self._emit((
                    frame[0], cpu, frame[2], frame[1], end_ts, total,
                    self_ns if self_ns > 0 else 0, depth, frame[3], True,
                ))
            del stack[:]


_ENTRY = int(Flag.ENTRY)
_EXIT = int(Flag.EXIT)


def _match_frames_walk(
    sel: np.ndarray,
    end_ts: Optional[int],
    strict: bool,
    meta: Optional[TraceMeta],
    gaps: Optional[GapMarkers] = None,
) -> ActivityTable:
    """Per-CPU stack walk over plain Python lists — the general path,
    handling unmatched EXITs (skip, or raise under ``strict``) and
    lost-event gap resynchronization."""
    times = sel["time"].tolist()
    events = sel["event"].tolist()
    cpus = sel["cpu"].tolist()
    flags = sel["flag"].tolist()
    pids = sel["pid"].tolist()
    args = sel["arg"].tolist()

    walker = ActivityStackWalker(strict=strict)
    feed = walker.feed
    pending = list(gaps) if gaps else []
    next_gap = pending[0][2] if pending else -1

    # hot: per-record fallback walk for malformed streams; keep obs out
    i = 0
    for t, event, cpu, flag, pid, arg in zip(
        times, events, cpus, flags, pids, args
    ):
        if i == next_gap:
            while pending and pending[0][2] <= i:
                gcpu, gts, _ = pending.pop(0)
                walker.gap(gcpu, gts)
            next_gap = pending[0][2] if pending else -1
        feed(t, event, cpu, flag, pid, arg)
        i += 1

    # Gaps anchored past the last record (e.g. the flush tail sub-buffer)
    # still truncate at their own boundary, not at end_ts.
    for gcpu, gts, _ in pending:
        walker.gap(gcpu, gts)
    walker.finish(int(end_ts))
    rows = walker.rows

    if rows:
        (o_event, o_cpu, o_pid, o_start, o_end, o_total, o_self, o_depth,
         o_arg, o_trunc) = zip(*rows)
    else:
        o_event = o_cpu = o_pid = o_start = o_end = ()
        o_total = o_self = o_depth = o_arg = o_trunc = ()

    return ActivityTable.from_columns(
        len(rows),
        meta=meta,
        event=o_event,
        cpu=o_cpu,
        pid=o_pid,
        start=o_start,
        end=o_end,
        total_ns=o_total,
        self_ns=o_self,
        depth=o_depth,
        arg=o_arg,
        truncated=o_trunc,
    )


def build_activities(
    records: np.ndarray,
    end_ts: Optional[int] = None,
    strict: bool = False,
) -> List[Activity]:
    """Object-path wrapper: the columnar reconstruction as Activity list."""
    return build_activity_table(records, end_ts=end_ts, strict=strict).rows()


def build_preemption_table(
    records: np.ndarray,
    meta: TraceMeta,
    end_ts: Optional[int] = None,
    kact_table: Optional[ActivityTable] = None,
) -> ActivityTable:
    """Derive preemption pseudo-activities from scheduler point events.

    A preemption window opens when a context switch installs a daemon on a
    CPU while the task it displaced (directly or through a chain of daemon
    switches) is an application rank left RUNNABLE, and closes when a
    non-daemon context returns.  Windows caused by the tracer's own daemon
    are tagged with :data:`TRACER_PREEMPT_EVENT` so the classifier can
    exclude them, as the paper does.
    """
    with obs.span("preemption"):
        return _build_preemption_table(records, meta, end_ts, kact_table)


def _build_preemption_table(
    records: np.ndarray,
    meta: TraceMeta,
    end_ts: Optional[int] = None,
    kact_table: Optional[ActivityTable] = None,
) -> ActivityTable:
    if end_ts is None and len(records):
        end_ts = int(records["time"].max())

    events_col = records["event"]
    relevant = (events_col == int(Ev.TASK_STATE)) | (
        events_col == int(Ev.SCHED_SWITCH)
    )
    sel = records[relevant]
    order = np.argsort(sel["time"], kind="stable")
    sel = sel[order]
    times = sel["time"].tolist()
    events = sel["event"].tolist()
    cpus = sel["cpu"].tolist()
    args = sel["arg"].tolist()

    EV_STATE = int(Ev.TASK_STATE)
    RUNNABLE = int(TaskState.RUNNABLE)
    daemon_kinds = (TaskKind.KDAEMON, TaskKind.UDAEMON, TaskKind.TRACERD)

    state: Dict[int, int] = {}
    # Per-CPU: [daemon_pid, window_start] of the open daemon segment.
    open_seg: Dict[int, List[int]] = {}
    displaced: Dict[int, Optional[int]] = {}
    kind_of = meta.kind_of

    o_event: List[int] = []
    o_cpu: List[int] = []
    o_pid: List[int] = []
    o_start: List[int] = []
    o_end: List[int] = []
    o_total: List[int] = []
    o_disp: List[int] = []
    o_trunc: List[bool] = []

    def close_segment(cpu: int, t: int, truncated: bool = False) -> None:
        seg = open_seg.pop(cpu, None)
        if seg is None:
            return
        disp = displaced.get(cpu)
        if disp is None:
            return
        daemon_pid, start = seg
        total = t - start
        if total <= 0:
            return
        o_event.append(
            TRACER_PREEMPT_EVENT
            if kind_of(daemon_pid) == TaskKind.TRACERD
            else PREEMPT_EVENT
        )
        o_cpu.append(cpu)
        o_pid.append(daemon_pid)
        o_start.append(start)
        o_end.append(t)
        o_total.append(total)
        o_disp.append(disp)
        o_trunc.append(truncated)

    for i in range(len(times)):
        if events[i] == EV_STATE:
            arg = args[i]
            state[arg >> 8] = arg & 0xFF
        else:  # SCHED_SWITCH
            cpu = cpus[i]
            t = times[i]
            arg = args[i]
            prev_pid = arg >> 32
            next_pid = arg & 0xFFFFFFFF
            close_segment(cpu, t)
            if (
                kind_of(prev_pid) == TaskKind.RANK
                and state.get(prev_pid) == RUNNABLE
            ):
                displaced[cpu] = prev_pid
            if kind_of(next_pid) in daemon_kinds:
                open_seg[cpu] = [next_pid, t]
            else:
                # A rank or idle took over: nobody is displaced anymore.
                displaced[cpu] = None

    for cpu in list(open_seg):
        close_segment(cpu, int(end_ts), truncated=True)

    table = ActivityTable.from_columns(
        len(o_event),
        meta=meta,
        event=o_event,
        cpu=o_cpu,
        pid=o_pid,
        start=o_start,
        end=o_end,
        total_ns=o_total,
        self_ns=o_total,  # nested kernel time subtracted below
        displaced_pid=o_disp,
        truncated=o_trunc,
    )

    # Subtract nested kernel-activity time from each window's self time.
    if kact_table is not None and len(kact_table) and len(table):
        _subtract_nested_table(table, kact_table)

    order = np.lexsort((table.data["cpu"], table.data["start"]))
    return table.take(order)


def build_preemptions(
    records: np.ndarray,
    meta: TraceMeta,
    end_ts: Optional[int] = None,
    kact_activities: Optional[List[Activity]] = None,
) -> List[Activity]:
    """Object-path wrapper over :func:`build_preemption_table`."""
    kact_table = (
        ActivityTable.from_rows(kact_activities)
        if kact_activities
        else None
    )
    return build_preemption_table(
        records, meta, end_ts=end_ts, kact_table=kact_table
    ).rows()


def _subtract_nested_table(
    preemptions: ActivityTable, kacts: ActivityTable
) -> None:
    """Remove depth-0 kernel-activity time nested inside preemption windows.

    Depth-0 kernel activities on one CPU never overlap each other (stack
    discipline), so each window's nested time is a prefix-sum difference
    over the start-sorted intervals plus a clip of the last one.  Matches
    the object path exactly: intervals *starting* inside the window count,
    an interval straddling the window start does not.
    """
    pdata = preemptions.data
    kdata = kacts.data
    k0 = kdata[kdata["depth"] == 0]
    if not len(k0):
        return
    for cpu in np.unique(pdata["cpu"]):
        ksel = k0[k0["cpu"] == cpu]
        if not len(ksel):
            continue
        korder = np.argsort(ksel["start"], kind="stable")
        ks = ksel["start"][korder]
        ke = ksel["end"][korder]
        # Durations clamp at 0: a truncated frame can carry end < start
        # when an explicit end_ts precedes its start.
        prefix = np.zeros(len(ks) + 1, dtype=np.int64)
        np.cumsum(np.maximum(0, ke - ks), out=prefix[1:])
        wsel = np.flatnonzero(pdata["cpu"] == cpu)
        w0 = pdata["start"][wsel]
        w1 = pdata["end"][wsel]
        lo = np.searchsorted(ks, w0, side="left")
        hi = np.searchsorted(ks, w1, side="left")
        nested = prefix[hi] - prefix[lo]
        # Only the last interval in range can extend past the window end.
        has = hi > lo
        last = hi[has] - 1
        nested[has] -= np.maximum(0, ke[last] - w1[has])
        pdata["self_ns"][wsel] = np.maximum(
            0, pdata["total_ns"][wsel] - nested
        )
