"""Nested-activity reconstruction from raw trace records.

Two reconstruction passes over the record stream:

1. **Paired activities** (:func:`build_activities`): a per-CPU stack matches
   ENTRY/EXIT records, attributing *self time* (total minus nested children)
   to every activity.  "We took particular care of nested events ...
   handling nested events is particularly important for obtaining correct
   statistics" — this is that care.

2. **Preemption windows** (:func:`build_preemptions`): scheduler point
   events (``sched_switch`` / ``task_state``) are folded into pseudo
   activities covering every interval in which a daemon held a CPU while a
   displaced application rank was runnable.  Their self time likewise
   excludes kernel activities nested inside the window.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.model import (
    Activity,
    PREEMPT_EVENT,
    TRACER_PREEMPT_EVENT,
    TraceMeta,
)
from repro.simkernel.task import TaskKind, TaskState
from repro.tracing.events import (
    Ev,
    Flag,
    decode_switch,
    decode_task_state,
    event_name,
    is_paired,
)


class _Open:
    __slots__ = ("event", "start", "pid", "arg", "nested")

    def __init__(self, event: int, start: int, pid: int, arg: int) -> None:
        self.event = event
        self.start = start
        self.pid = pid
        self.arg = arg
        self.nested = 0


def build_activities(
    records: np.ndarray,
    end_ts: Optional[int] = None,
    strict: bool = False,
) -> List[Activity]:
    """Reconstruct paired kernel activities from a record array.

    Parameters
    ----------
    records:
        Structured array (``RECORD_DTYPE``), globally time-sorted or not —
        per-CPU order is what matters and per-CPU streams are in order.
    end_ts:
        Trace end; open activities are truncated here and flagged.
    strict:
        Raise on unmatched EXIT records instead of skipping them.
    """
    stacks: Dict[int, List[_Open]] = {}
    activities: List[Activity] = []

    times = records["time"]
    events = records["event"]
    cpus = records["cpu"]
    flags = records["flag"]
    pids = records["pid"]
    args = records["arg"]

    for i in range(len(records)):
        event = int(events[i])
        if not is_paired(event):
            continue
        cpu = int(cpus[i])
        t = int(times[i])
        flag = int(flags[i])
        stack = stacks.setdefault(cpu, [])
        if flag == Flag.ENTRY:
            stack.append(_Open(event, t, int(pids[i]), int(args[i])))
        elif flag == Flag.EXIT:
            if not stack or stack[-1].event != event:
                if strict:
                    raise ValueError(
                        f"unmatched EXIT for {event_name(event)} "
                        f"on cpu{cpu} at t={t}"
                    )
                continue
            frame = stack.pop()
            total = t - frame.start
            self_ns = total - frame.nested
            if stack:
                stack[-1].nested += total
            activities.append(
                Activity(
                    event=frame.event,
                    name=event_name(frame.event),
                    cpu=cpu,
                    pid=frame.pid,
                    start=frame.start,
                    end=t,
                    total_ns=total,
                    self_ns=max(0, self_ns),
                    depth=len(stack),
                    arg=frame.arg,
                )
            )

    # Truncate whatever the end of tracing interrupted.
    if end_ts is None and len(records):
        end_ts = int(times.max())
    for cpu, stack in stacks.items():
        depth = 0
        for frame in stack:
            total = max(0, int(end_ts) - frame.start)
            activities.append(
                Activity(
                    event=frame.event,
                    name=event_name(frame.event),
                    cpu=cpu,
                    pid=frame.pid,
                    start=frame.start,
                    end=int(end_ts),
                    total_ns=total,
                    self_ns=max(0, total - frame.nested),
                    depth=depth,
                    arg=frame.arg,
                    truncated=True,
                )
            )
            depth += 1

    activities.sort(key=lambda a: (a.start, a.cpu, a.depth))
    return activities


def build_preemptions(
    records: np.ndarray,
    meta: TraceMeta,
    end_ts: Optional[int] = None,
    kact_activities: Optional[List[Activity]] = None,
) -> List[Activity]:
    """Derive preemption pseudo-activities from scheduler point events.

    A preemption window opens when a context switch installs a daemon on a
    CPU while the task it displaced (directly or through a chain of daemon
    switches) is an application rank left RUNNABLE, and closes when a
    non-daemon context returns.  Windows caused by the tracer's own daemon
    are tagged with :data:`TRACER_PREEMPT_EVENT` so the classifier can
    exclude them, as the paper does.
    """
    times = records["time"]
    events = records["event"]
    cpus = records["cpu"]
    pids_arr = records["pid"]
    args = records["arg"]

    order = np.argsort(times, kind="stable")

    state: Dict[int, int] = {}
    # Per-CPU: (daemon_pid, window_start) of the open daemon segment.
    open_seg: Dict[int, Tuple[int, int]] = {}
    displaced: Dict[int, Optional[int]] = {}
    out: List[Activity] = []
    if end_ts is None and len(records):
        end_ts = int(times.max())

    def close_segment(cpu: int, t: int, truncated: bool = False) -> None:
        seg = open_seg.pop(cpu, None)
        if seg is None:
            return
        daemon_pid, start = seg
        disp = displaced.get(cpu)
        if disp is None:
            return
        total = t - start
        if total <= 0:
            return
        event = (
            TRACER_PREEMPT_EVENT
            if meta.kind_of(daemon_pid) == TaskKind.TRACERD
            else PREEMPT_EVENT
        )
        out.append(
            Activity(
                event=event,
                name=f"preempt:{meta.name_of(daemon_pid)}",
                cpu=cpu,
                pid=daemon_pid,
                start=start,
                end=t,
                total_ns=total,
                self_ns=total,  # nested kernel time subtracted below
                displaced_pid=disp,
                truncated=truncated,
            )
        )

    for i in order:
        event = int(events[i])
        if event == Ev.TASK_STATE:
            pid, st = decode_task_state(int(args[i]))
            state[pid] = st
        elif event == Ev.SCHED_SWITCH:
            cpu = int(cpus[i])
            t = int(times[i])
            prev_pid, next_pid = decode_switch(int(args[i]))
            close_segment(cpu, t)
            prev_kind = meta.kind_of(prev_pid)
            next_kind = meta.kind_of(next_pid)
            if (
                prev_kind == TaskKind.RANK
                and state.get(prev_pid) == TaskState.RUNNABLE
            ):
                displaced[cpu] = prev_pid
            if next_kind in (TaskKind.KDAEMON, TaskKind.UDAEMON, TaskKind.TRACERD):
                open_seg[cpu] = (next_pid, t)
            else:
                # A rank or idle took over: nobody is displaced anymore.
                displaced[cpu] = None

    for cpu in list(open_seg):
        close_segment(cpu, int(end_ts), truncated=True)

    # Subtract nested kernel-activity time from each window's self time.
    if kact_activities:
        _subtract_nested(out, kact_activities)

    out.sort(key=lambda a: (a.start, a.cpu))
    return out


def _subtract_nested(
    preemptions: List[Activity], kacts: List[Activity]
) -> None:
    """Remove depth-0 kernel-activity time nested inside preemption windows."""
    by_cpu: Dict[int, List[Activity]] = {}
    for act in kacts:
        if act.depth == 0:
            by_cpu.setdefault(act.cpu, []).append(act)
    for acts in by_cpu.values():
        acts.sort(key=lambda a: a.start)
    for window in preemptions:
        acts = by_cpu.get(window.cpu)
        if not acts:
            continue
        nested = 0
        # Linear scan over the window's span (activities are sorted).
        import bisect

        starts = [a.start for a in acts]
        idx = bisect.bisect_left(starts, window.start)
        while idx < len(acts) and acts[idx].start < window.end:
            nested += acts[idx].overlap(window.start, window.end)
            idx += 1
        window.self_ns = max(0, window.total_ns - nested)
