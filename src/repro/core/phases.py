"""Phase-segmented analysis.

Workloads emit ``marker`` point events at phase changes (the Sequoia models
mark every fault-rate transition); this module segments a trace at those
markers and computes per-phase statistics — the quantitative form of the
paper's Figure 5 reading ("LAMMPS page faults are mainly located at the
beginning, during initialization").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.analysis import NoiseAnalysis, _resolve_event
from repro.core.model import (
    BREAKDOWN_CATEGORIES,
    CATEGORY_ORDER,
    NoiseCategory,
)
from repro.util.stats import describe_durations


@dataclass(frozen=True)
class Phase:
    """One trace segment between consecutive markers."""

    index: int
    start: int
    end: int
    #: The opening marker's argument (the Sequoia models put the phase's
    #: fault rate here); -1 for the pre-first-marker segment.
    tag: int

    @property
    def span_ns(self) -> int:
        return self.end - self.start


def split_phases(analysis: NoiseAnalysis) -> List[Phase]:
    """Segment the trace at marker events (deduplicated per timestamp)."""
    marks = analysis.markers()
    boundaries: List[tuple] = []
    seen = set()
    for time, _pid, arg in marks:
        if int(time) not in seen:
            seen.add(int(time))
            boundaries.append((int(time), int(arg)))
    boundaries.sort()
    phases: List[Phase] = []
    cursor = analysis.start_ts
    tag = -1
    index = 0
    for time, arg in boundaries:
        if time > cursor:
            phases.append(Phase(index, cursor, time, tag))
            index += 1
        cursor = time
        tag = arg
    if analysis.end_ts > cursor:
        phases.append(Phase(index, cursor, analysis.end_ts, tag))
    return phases


def phase_stats(
    analysis: NoiseAnalysis,
    event: Union[int, str],
    phases: Optional[Sequence[Phase]] = None,
) -> "List[tuple]":
    """Per-phase ``(phase, DurationStats)`` rows for one event type.

    Frequencies are per CPU-second *of the phase*, so a fault burst during
    a short initialization reads as the high rate it locally is.
    """
    if phases is None:
        phases = split_phases(analysis)
    table = analysis.table
    m = table.mask(event=_resolve_event(event), include_truncated=False)
    # The table is time-sorted, so each phase is one searchsorted slice.
    starts = table.data["start"][m]
    self_ns = table.data["self_ns"][m]
    out = []
    for phase in phases:
        lo = np.searchsorted(starts, phase.start, side="left")
        hi = np.searchsorted(starts, phase.end, side="left")
        stats = describe_durations(
            self_ns[lo:hi], span_ns=max(1, phase.span_ns), cpus=analysis.ncpus
        )
        out.append((phase, stats))
    return out


def phase_breakdown(
    analysis: NoiseAnalysis,
    phases: Optional[Sequence[Phase]] = None,
) -> "List[tuple]":
    """Per-phase category totals: how the noise *mix* changes over a run."""
    if phases is None:
        phases = split_phases(analysis)
    d = analysis.table.data
    noise = d["is_noise"]
    out = []
    for phase in phases:
        totals: Dict[NoiseCategory, int] = {c: 0 for c in BREAKDOWN_CATEGORIES}
        # Columnar prefilter; the proportional split stays Python-int
        # arithmetic (arbitrary precision), so totals are exact however
        # large the timestamps get.
        m = noise & (d["end"] > phase.start) & (d["start"] < phase.end)
        sub = d[m]
        for start, end, total_ns, self_ns, code in zip(
            sub["start"].tolist(),
            sub["end"].tolist(),
            sub["total_ns"].tolist(),
            sub["self_ns"].tolist(),
            sub["category"].tolist(),
        ):
            overlap = min(end, phase.end) - max(start, phase.start)
            if overlap <= 0:
                continue
            total = total_ns if total_ns > 0 else 1
            category = CATEGORY_ORDER[code]
            totals[category] = totals.get(category, 0) + (
                self_ns * overlap // total
            )
        out.append((phase, totals))
    return out
