"""Phase-segmented analysis.

Workloads emit ``marker`` point events at phase changes (the Sequoia models
mark every fault-rate transition); this module segments a trace at those
markers and computes per-phase statistics — the quantitative form of the
paper's Figure 5 reading ("LAMMPS page faults are mainly located at the
beginning, during initialization").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.analysis import NoiseAnalysis
from repro.core.model import BREAKDOWN_CATEGORIES, NoiseCategory
from repro.util.stats import DurationStats, describe_durations


@dataclass(frozen=True)
class Phase:
    """One trace segment between consecutive markers."""

    index: int
    start: int
    end: int
    #: The opening marker's argument (the Sequoia models put the phase's
    #: fault rate here); -1 for the pre-first-marker segment.
    tag: int

    @property
    def span_ns(self) -> int:
        return self.end - self.start


def split_phases(analysis: NoiseAnalysis) -> List[Phase]:
    """Segment the trace at marker events (deduplicated per timestamp)."""
    marks = analysis.markers()
    boundaries: List[tuple] = []
    seen = set()
    for time, _pid, arg in marks:
        if int(time) not in seen:
            seen.add(int(time))
            boundaries.append((int(time), int(arg)))
    boundaries.sort()
    phases: List[Phase] = []
    cursor = analysis.start_ts
    tag = -1
    index = 0
    for time, arg in boundaries:
        if time > cursor:
            phases.append(Phase(index, cursor, time, tag))
            index += 1
        cursor = time
        tag = arg
    if analysis.end_ts > cursor:
        phases.append(Phase(index, cursor, analysis.end_ts, tag))
    return phases


def phase_stats(
    analysis: NoiseAnalysis,
    event: Union[int, str],
    phases: Optional[Sequence[Phase]] = None,
) -> "List[tuple]":
    """Per-phase ``(phase, DurationStats)`` rows for one event type.

    Frequencies are per CPU-second *of the phase*, so a fault burst during
    a short initialization reads as the high rate it locally is.
    """
    if phases is None:
        phases = split_phases(analysis)
    acts = analysis.select(event=event)
    out = []
    for phase in phases:
        durations = [
            a.self_ns for a in acts if phase.start <= a.start < phase.end
        ]
        stats = describe_durations(
            durations, span_ns=max(1, phase.span_ns), cpus=analysis.ncpus
        )
        out.append((phase, stats))
    return out


def phase_breakdown(
    analysis: NoiseAnalysis,
    phases: Optional[Sequence[Phase]] = None,
) -> "List[tuple]":
    """Per-phase category totals: how the noise *mix* changes over a run."""
    if phases is None:
        phases = split_phases(analysis)
    out = []
    for phase in phases:
        totals: Dict[NoiseCategory, int] = {c: 0 for c in BREAKDOWN_CATEGORIES}
        for act in analysis.activities:
            if not act.is_noise:
                continue
            overlap = act.overlap(phase.start, phase.end)
            if overlap <= 0:
                continue
            total = act.total_ns if act.total_ns > 0 else 1
            totals[act.category] = totals.get(act.category, 0) + int(
                act.self_ns * overlap / total
            )
        out.append((phase, totals))
    return out
