"""FTQ-vs-trace validation (Section III-C, Figure 1).

The paper validates lttng-noise by running FTQ and comparing the noise FTQ
infers indirectly (missing basic operations x per-operation cost) against
the noise the trace measures directly, on the *same* execution.  The two
series must agree closely — with FTQ *slightly overestimating*, because a
basic operation interrupted by the kernel (or cut by the quantum boundary)
is lost entirely even though part of it was executed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.analysis import NoiseAnalysis


@dataclass(frozen=True)
class FtqComparison:
    """Paired per-quantum noise estimates from FTQ and from the trace."""

    quantum_ns: int
    op_ns: int
    #: Quantum start timestamps.
    times: np.ndarray
    #: Basic operations FTQ counted per quantum.
    ftq_counts: np.ndarray
    #: FTQ's indirect noise estimate: (Nmax - N_i) * op_ns.
    ftq_noise_ns: np.ndarray
    #: The trace's direct per-quantum noise measurement.
    trace_noise_ns: np.ndarray

    @property
    def n_max(self) -> int:
        return self.quantum_ns // self.op_ns

    def mean_abs_error_ns(self) -> float:
        return float(np.abs(self.ftq_noise_ns - self.trace_noise_ns).mean())

    def mean_overestimate_ns(self) -> float:
        """Positive when FTQ overestimates, as the paper reports."""
        return float((self.ftq_noise_ns - self.trace_noise_ns).mean())

    def correlation(self) -> float:
        """Pearson correlation between the two series."""
        a, b = self.ftq_noise_ns, self.trace_noise_ns
        if len(a) < 2 or a.std() == 0 or b.std() == 0:
            return 1.0
        return float(np.corrcoef(a, b)[0, 1])


def compare_ftq(
    analysis: NoiseAnalysis,
    cpu: int,
    quantum_ns: int,
    op_ns: int,
    t0: Optional[int] = None,
    t1: Optional[int] = None,
) -> FtqComparison:
    """Replay FTQ's counting over the traced execution of one CPU.

    FTQ executes basic operations back to back in user mode; an operation
    *counts* for quantum ``i`` only if it completes inside it.  Cumulative
    user time from the trace tells us exactly when each operation completed,
    so FTQ's per-quantum counts are reproduced operation-exactly — including
    the discretization loss that makes FTQ overestimate noise.
    """
    if quantum_ns <= 0 or op_ns <= 0:
        raise ValueError("quantum and op durations must be positive")
    if quantum_ns % op_ns != 0:
        raise ValueError("quantum must be a multiple of the basic op cost")
    t0 = analysis.start_ts if t0 is None else t0
    t1 = analysis.end_ts if t1 is None else t1
    n_quanta = (t1 - t0) // quantum_ns
    if n_quanta < 1:
        raise ValueError("window shorter than one quantum")
    t1 = t0 + n_quanta * quantum_ns

    # Cumulative user time at kernel-activity boundaries.
    rows = analysis.user_time_cumulative(cpu, t0, t1)
    wall = rows[:, 0].astype(np.float64)
    user = rows[:, 1].astype(np.float64)

    boundaries = t0 + quantum_ns * np.arange(n_quanta + 1, dtype=np.int64)
    user_at = np.interp(boundaries.astype(np.float64), wall, user)

    # Whole operations completed by each boundary.
    ops_at = np.floor(user_at / op_ns).astype(np.int64)  # noiselint: disable=NSX002 -- op_ns is a fractional model parameter; op counts are FTQ estimates, not timestamps
    counts = np.diff(ops_at)
    n_max = quantum_ns // op_ns
    ftq_noise = (n_max - counts) * op_ns

    trace_noise = quantum_ns - np.diff(user_at)

    return FtqComparison(
        quantum_ns=quantum_ns,
        op_ns=op_ns,
        times=boundaries[:-1],
        ftq_counts=counts,
        ftq_noise_ns=ftq_noise.astype(np.float64),
        trace_noise_ns=trace_noise.astype(np.float64),
    )
