"""Noise-profile comparison: "did my kernel change help?"

The paper motivates FTQ as giving "quick relative comparisons between
different versions as developers work on reducing noise" — the quantitative
methodology can do the same comparison *per event*.  Given two analyses
(two kernel configurations, two patches, traced vs baseline), this module
reports which noise sources improved, regressed, appeared or vanished.

Used by the policy ablations and directly useful to a kernel developer
driving the simulator (or, with real traces in the same format, a machine).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List

from repro.core.analysis import NoiseAnalysis
from repro.util.units import SEC


class Verdict(Enum):
    IMPROVED = "improved"
    REGRESSED = "regressed"
    UNCHANGED = "unchanged"
    NEW = "new"
    GONE = "gone"


@dataclass(frozen=True)
class EventDelta:
    """Per-event change between baseline (a) and candidate (b).

    Budgets are noise nanoseconds per CPU-second, the unit that matters:
    frequency or duration alone can each move while their product stays put.
    """

    name: str
    budget_a: float   # ns of noise per CPU-second in the baseline
    budget_b: float
    freq_a: float
    freq_b: float
    avg_a: float
    avg_b: float
    verdict: Verdict

    @property
    def budget_delta(self) -> float:
        return self.budget_b - self.budget_a

    def describe(self) -> str:
        return (
            f"{self.name:24s} {self.verdict.value:10s} "
            f"{self.budget_a:10.0f} -> {self.budget_b:10.0f} ns/cpu-s  "
            f"(freq {self.freq_a:.1f} -> {self.freq_b:.1f}, "
            f"avg {self.avg_a:.0f} -> {self.avg_b:.0f} ns)"
        )


@dataclass(frozen=True)
class ProfileComparison:
    deltas: List[EventDelta]
    noise_fraction_a: float
    noise_fraction_b: float

    @property
    def total_verdict(self) -> Verdict:
        if self.noise_fraction_a == 0 and self.noise_fraction_b == 0:
            return Verdict.UNCHANGED
        if self.noise_fraction_b < 0.9 * self.noise_fraction_a:
            return Verdict.IMPROVED
        if self.noise_fraction_b > 1.1 * self.noise_fraction_a:
            return Verdict.REGRESSED
        return Verdict.UNCHANGED

    def regressions(self) -> List[EventDelta]:
        return [
            d
            for d in self.deltas
            if d.verdict in (Verdict.REGRESSED, Verdict.NEW)
        ]

    def improvements(self) -> List[EventDelta]:
        return [
            d
            for d in self.deltas
            if d.verdict in (Verdict.IMPROVED, Verdict.GONE)
        ]

    def report(self) -> str:
        lines = [
            f"total noise: {100 * self.noise_fraction_a:.3f} % -> "
            f"{100 * self.noise_fraction_b:.3f} %  [{self.total_verdict.value}]",
            "",
        ]
        for delta in sorted(
            self.deltas, key=lambda d: abs(d.budget_delta), reverse=True
        ):
            lines.append(delta.describe())
        return "\n".join(lines)


def compare_profiles(
    baseline: NoiseAnalysis,
    candidate: NoiseAnalysis,
    threshold: float = 0.10,
) -> ProfileComparison:
    """Per-event comparison of two noise profiles.

    ``threshold``: relative budget change below which an event counts as
    unchanged (run-to-run variation eats small deltas; see
    :mod:`repro.core.sweep` for quantifying that variation).
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")

    def budgets(analysis: NoiseAnalysis) -> Dict[str, tuple]:
        # Aggregate per-CPU daemon instances (rpciod/0..7 -> rpciod): the
        # per-instance split is placement noise, not a kernel property.
        import re

        grouped: Dict[str, List[tuple]] = {}
        span_cpu_sec = analysis.span_ns / SEC * analysis.ncpus
        for name, stats in analysis.stats_by_event(noise_only=True).items():
            canonical = re.sub(r"/\d+$", "", name)
            grouped.setdefault(canonical, []).append(stats)
        out = {}
        for name, rows in grouped.items():
            total = sum(s.total for s in rows)
            count = sum(s.count for s in rows)
            freq = sum(s.freq for s in rows)
            avg = total / count if count else 0.0
            out[name] = (total / span_cpu_sec, freq, avg)
        return out

    rows_a = budgets(baseline)
    rows_b = budgets(candidate)
    deltas: List[EventDelta] = []
    for name in sorted(set(rows_a) | set(rows_b)):
        budget_a, freq_a, avg_a = rows_a.get(name, (0.0, 0.0, 0.0))
        budget_b, freq_b, avg_b = rows_b.get(name, (0.0, 0.0, 0.0))
        if name not in rows_a:
            verdict = Verdict.NEW
        elif name not in rows_b:
            verdict = Verdict.GONE
        elif budget_b < budget_a * (1 - threshold):
            verdict = Verdict.IMPROVED
        elif budget_b > budget_a * (1 + threshold):
            verdict = Verdict.REGRESSED
        else:
            verdict = Verdict.UNCHANGED
        deltas.append(
            EventDelta(
                name=name,
                budget_a=budget_a,
                budget_b=budget_b,
                freq_a=freq_a,
                freq_b=freq_b,
                avg_a=avg_a,
                avg_b=avg_b,
                verdict=verdict,
            )
        )
    return ProfileComparison(
        deltas=deltas,
        noise_fraction_a=baseline.noise_fraction(),
        noise_fraction_b=candidate.noise_fraction(),
    )
