"""The paper's contribution: quantitative per-event OS noise analysis."""

from repro.core.analysis import NoiseAnalysis, binned_noise_ns
from repro.core.chart import SyntheticNoiseChart, build_interruptions
from repro.core.classify import (
    classify_activities,
    classify_table,
    noise_activities,
)
from repro.core.cluster import ClusterStudy, NodeRun
from repro.core.compare import FtqComparison, compare_ftq
from repro.core.disambiguate import (
    AmbiguousPair,
    CompositionFinding,
    find_ambiguous_pairs,
    find_composed,
    quantum_composition,
)
from repro.core.histogram import (
    Histogram,
    duration_histogram,
    spread_ratio,
    table_histogram,
    tail_index,
)
from repro.core.model import (
    Activity,
    ActivityTable,
    BREAKDOWN_CATEGORIES,
    CATEGORY_CODE,
    CATEGORY_ORDER,
    Interruption,
    NoiseCategory,
    PREEMPT_EVENT,
    TraceMeta,
)
from repro.core.nesting import (
    build_activities,
    build_activity_table,
    build_preemption_table,
    build_preemptions,
)
from repro.core.noise_model import (
    NoiseProfile,
    NoiseSource,
    fit_noise_profile,
)
from repro.core.phases import (
    Phase,
    phase_breakdown,
    phase_stats,
    split_phases,
)
from repro.core.regress import (
    EventDelta,
    ProfileComparison,
    Verdict,
    compare_profiles,
)
from repro.core.sweep import MetricSummary, SeedSweep
from repro.core.timeline import StateInterval, TaskTimeline
from repro.core.scalability import (
    ScalabilityPoint,
    ablated_samples,
    per_interval_noise_samples,
    project_slowdown,
    resonance_scan,
)

__all__ = [
    "NoiseAnalysis",
    "binned_noise_ns",
    "SyntheticNoiseChart",
    "build_interruptions",
    "classify_activities",
    "classify_table",
    "noise_activities",
    "ClusterStudy",
    "NodeRun",
    "FtqComparison",
    "compare_ftq",
    "AmbiguousPair",
    "CompositionFinding",
    "find_ambiguous_pairs",
    "find_composed",
    "quantum_composition",
    "Histogram",
    "duration_histogram",
    "spread_ratio",
    "table_histogram",
    "tail_index",
    "Activity",
    "ActivityTable",
    "BREAKDOWN_CATEGORIES",
    "CATEGORY_CODE",
    "CATEGORY_ORDER",
    "Interruption",
    "NoiseCategory",
    "PREEMPT_EVENT",
    "TraceMeta",
    "build_activities",
    "build_activity_table",
    "build_preemption_table",
    "build_preemptions",
    "StateInterval",
    "TaskTimeline",
    "EventDelta",
    "ProfileComparison",
    "Verdict",
    "compare_profiles",
    "MetricSummary",
    "SeedSweep",
    "NoiseProfile",
    "NoiseSource",
    "fit_noise_profile",
    "Phase",
    "phase_breakdown",
    "phase_stats",
    "split_phases",
    "ScalabilityPoint",
    "ablated_samples",
    "per_interval_noise_samples",
    "project_slowdown",
    "resonance_scan",
]
