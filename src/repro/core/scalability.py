"""Noise-resonance scalability projection (extension).

The paper motivates per-event noise analysis with the scalability argument
from Petrini et al.: in a bulk-synchronous application every collective
waits for the *slowest* rank, so per-node noise that is negligible locally
(a fraction of a percent) is amplified by the max over thousands of nodes —
especially when noise granularity resonates with the application's
computation granularity, and "OS noise activities that vary so much may
limit application scalability on large machines" (Section IV-B).

This module projects a measured single-node noise profile onto N-node
machines: per compute interval of length g, each node independently draws
its noise from the measured per-interval distribution; the iteration takes
``g + max_i(noise_i)``.  It reproduces the classic findings: slowdown grows
with node count, fine-grained applications suffer from high-frequency noise,
and removing heavy-tailed sources (page faults, daemon preemptions) restores
scalability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.analysis import NoiseAnalysis, binned_noise_ns
from repro.core.model import CATEGORY_CODE
from repro.util.rng import RngLike, make_rng


@dataclass(frozen=True)
class ScalabilityPoint:
    nodes: int
    #: Expected iteration time / ideal iteration time.
    slowdown: float
    #: Expected per-iteration noise paid at the collective, ns.
    mean_penalty_ns: float


def per_interval_noise_samples(
    analysis: NoiseAnalysis,
    granularity_ns: int,
    cpu: Optional[int] = None,
) -> np.ndarray:
    """Empirical distribution: noise per compute interval of length g."""
    timeline = analysis.noise_timeline(granularity_ns, cpu=cpu)
    return timeline


def project_slowdown(
    interval_noise_ns: Sequence[float],
    granularity_ns: int,
    node_counts: Sequence[int],
    rng: RngLike = 0,
    iterations: int = 2000,
) -> List[ScalabilityPoint]:
    """Monte-Carlo projection of collective slowdown vs. machine size.

    Parameters
    ----------
    interval_noise_ns:
        Measured noise per compute interval on one node (from
        :func:`per_interval_noise_samples`).
    granularity_ns:
        The application's computation granularity between collectives.
    node_counts:
        Machine sizes to project to.
    """
    samples = np.asarray(interval_noise_ns, dtype=np.float64)
    if samples.size == 0:
        raise ValueError("no noise samples")
    if granularity_ns <= 0:
        raise ValueError("granularity must be positive")
    generator = make_rng(rng)
    out: List[ScalabilityPoint] = []
    for n in node_counts:
        if n <= 0:
            raise ValueError("node counts must be positive")
        draws = generator.choice(samples, size=(iterations, n), replace=True)
        penalty = draws.max(axis=1).mean()
        out.append(
            ScalabilityPoint(
                nodes=int(n),
                slowdown=float((granularity_ns + penalty) / granularity_ns),
                mean_penalty_ns=float(penalty),  # noiselint: disable=NSX001 -- Monte-Carlo mean of sampled penalties; reporting-only float
            )
        )
    return out


def ablated_samples(
    analysis: NoiseAnalysis,
    granularity_ns: int,
    drop_categories: Sequence,
    cpu: Optional[int] = None,
) -> np.ndarray:
    """Per-interval noise with some categories removed — "what if we fixed
    this source?" ablations (e.g. the paper's CNK comparison: lightweight
    kernels eliminate page faults entirely)."""
    codes = np.array(
        sorted(CATEGORY_CODE[c] for c in set(drop_categories)), dtype=np.int8
    )
    table = analysis.table
    kept = table.take(~np.isin(table.data["category"], codes))
    return binned_noise_ns(
        kept, granularity_ns, analysis.start_ts, analysis.end_ts, cpu=cpu
    )


def resonance_scan(
    analysis: NoiseAnalysis,
    granularities_ns: Sequence[int],
    nodes: int,
    rng: RngLike = 0,
    cpu: Optional[int] = None,
) -> Dict[int, float]:
    """Slowdown vs. application granularity at a fixed machine size.

    Fine-grained applications resonate with high-frequency noise; coarse
    ones with rare long events (the paper's Section II discussion).
    """
    results: Dict[int, float] = {}
    for g in granularities_ns:
        samples = per_interval_noise_samples(analysis, g, cpu=cpu)
        point = project_slowdown(samples, g, [nodes], rng=rng)[0]
        results[int(g)] = point.slowdown
    return results
