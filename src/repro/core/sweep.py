"""Seed sweeps: run-to-run variation of noise statistics.

One seeded run is one sample of a stochastic system.  Before reading
anything into a 10 % delta between two configurations, a developer needs to
know the natural spread of the metric — this module runs a workload across
seeds and summarizes any metric's distribution (mean, std, a normal-theory
confidence interval).  EXPERIMENTS.md's tolerances were picked with this.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.core.analysis import NoiseAnalysis
from repro.core.model import NoiseCategory, TraceMeta


@dataclass(frozen=True)
class MetricSummary:
    name: str
    values: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def std(self) -> float:
        return float(self.values.std(ddof=1)) if len(self.values) > 1 else 0.0

    @property
    def cv(self) -> float:
        """Coefficient of variation (std/|mean|); 0 when mean is 0.

        The magnitude of the mean normalizes the spread — a negative-mean
        metric must not report a negative dispersion.
        """
        return self.std / abs(self.mean) if self.mean else 0.0

    def confidence_interval(self, z: float = 1.96) -> "tuple[float, float]":
        """Normal-approximation CI of the mean (default ~95 %).

        With a single sample the spread is unknowable, so the interval is
        infinitely wide — a one-run sweep must not masquerade as converged.
        """
        if len(self.values) < 2:
            return (-math.inf, math.inf)
        half = z * self.std / math.sqrt(len(self.values))
        return (self.mean - half, self.mean + half)

    def describe(self) -> str:
        low, high = self.confidence_interval()
        return (
            f"{self.name}: {self.mean:.4g} +- {self.std:.3g} "
            f"(cv {100 * self.cv:.1f} %, 95% CI [{low:.4g}, {high:.4g}], "
            f"n={len(self.values)})"
        )


class SeedSweep:
    """Analyses of the same workload under different seeds."""

    #: One-line execution report (runs, cache hits, wall time) set by
    #: :meth:`run` when the parallel-runner path was used; None otherwise.
    exec_summary: Optional[str] = None
    #: Machine-readable version of :attr:`exec_summary` (``--summary-json``);
    #: None when the legacy in-process path ran.
    exec_stats: Optional[dict] = None

    def __init__(self, analyses: List[NoiseAnalysis]) -> None:
        if not analyses:
            raise ValueError("sweep needs at least one run")
        self.analyses = analyses

    @staticmethod
    def run(
        workload_factory: Union[str, Callable[[], "object"]],
        duration_ns: int,
        seeds: Sequence[int],
        ncpus: int = 8,
        *,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        cache: Optional["object"] = None,
        progress: Optional[Callable] = None,
        backend: Optional["object"] = None,
        plan: Optional["object"] = None,
    ) -> "SeedSweep":
        """Run the workload once per seed and collect the analyses.

        ``workload_factory`` is a zero-arg callable (the historical API) or
        a workload name resolvable by :mod:`repro.exec` (``"FTQ"``, a
        Sequoia benchmark, ``"module:attr"``).  With ``parallel=True`` the
        runs fan out across a process pool; results are bit-identical to
        the serial path because each run is deterministic in its spec.
        ``cache`` (a :class:`repro.exec.ResultCache`) lets repeat sweeps
        skip simulation entirely.

        ``backend`` (a :class:`repro.exec.DispatchBackend`) overrides how
        specs execute; ``plan`` (a :class:`repro.exec.SweepPlan`) routes
        execution through the sharded, journaled planner so the sweep can
        be interrupted and resumed — see ``docs/sweep-orchestration.md``.
        Both paths produce bit-identical analyses.

        Factories that are not importable by name (lambdas, closures,
        bound instances) cannot cross a process boundary; those fall back
        to in-process execution with a warning.
        """
        from repro.exec import ParallelRunner, RunSpec, dotted_path_of

        name: Optional[str] = None
        if isinstance(workload_factory, str):
            name = workload_factory
        elif parallel or cache is not None or plan is not None:
            name = dotted_path_of(workload_factory)
            if name is None and parallel:
                warnings.warn(
                    "workload factory has no importable path; running the "
                    "sweep serially in-process (pass a workload name or a "
                    "module-level factory to parallelize)",
                    RuntimeWarning,
                    stacklevel=2,
                )
        if name is None and plan is not None:
            raise ValueError(
                "a planned sweep needs a named workload (factories without "
                "an importable path cannot be journaled)"
            )
        if name is not None:
            specs = [
                RunSpec.make(name, duration_ns, int(seed), ncpus)
                for seed in seeds
            ]
            runner = ParallelRunner(
                max_workers=max_workers, cache=cache, parallel=parallel,
                backend=backend,
            )
            with obs.span("sweep", workload=name, runs=len(specs)):
                if plan is not None:
                    if not plan.matches(specs):
                        raise ValueError(
                            "plan does not match this sweep's specs; "
                            "re-plan or fix the arguments"
                        )
                    plan_results = plan.execute(runner, progress=progress)
                    results = plan.results_for(specs, plan_results)
                    stats = dict(plan.last_stats)
                    stats["shards"] = plan.nshards
                    stats["unique_specs"] = len(plan.specs)
                    stats["duplicates"] = plan.duplicates
                else:
                    results = runner.run(specs, progress=progress)
                    stats = runner.summary_dict()
                sweep = SeedSweep([r.analysis() for r in results])
            how = (
                f"{min(runner.max_workers, max(1, runner.last_simulated))} "
                f"workers" if runner.used_processes else "serial"
            )
            sweep.exec_summary = (
                f"{int(stats['runs'])} runs: {int(stats['cached'])} cached, "
                f"{int(stats['simulated'])} simulated ({how}) "
                f"in {stats['wall_s']:.2f}s wall"
            )
            stats["failures"] = 0
            if cache is not None:
                sweep.exec_summary += (
                    f"; cache {cache.hits} hits, {cache.misses} misses"
                )
                stats["cache_hits"] = cache.hits
                stats["cache_misses"] = cache.misses
            sweep.exec_stats = stats
            return sweep

        analyses = []
        with obs.span("sweep", runs=len(seeds)):
            for seed in seeds:
                workload = workload_factory()
                node, trace = workload.run_traced(
                    duration_ns, seed=int(seed), ncpus=ncpus
                )
                analyses.append(
                    NoiseAnalysis(trace, meta=TraceMeta.from_node(node))
                )
        return SeedSweep(analyses)

    # ------------------------------------------------------------------
    def metric(
        self, name: str, fn: Callable[[NoiseAnalysis], float]
    ) -> MetricSummary:
        """Evaluate any scalar metric across the sweep."""
        values = np.array([fn(a) for a in self.analyses], dtype=np.float64)
        return MetricSummary(name, values)

    def stat_metric(
        self, event: str, field: str = "freq"
    ) -> MetricSummary:
        """Spread of one table cell, e.g. ``('page_fault', 'avg')``."""
        if field not in ("freq", "avg", "max", "min", "total", "count"):
            raise ValueError(f"unknown stats field: {field!r}")
        return self.metric(
            f"{event}.{field}",
            lambda a: float(getattr(a.stats(event), field)),
        )

    def breakdown_metric(self, category: NoiseCategory) -> MetricSummary:
        return self.metric(
            f"breakdown.{category.value}",
            lambda a: a.breakdown_fractions().get(category, 0.0),
        )

    def noise_fraction(self) -> MetricSummary:
        return self.metric("noise_fraction", lambda a: a.noise_fraction())

    def summary_table(self, events: Sequence[str]) -> str:
        lines = [self.noise_fraction().describe()]
        for event in events:
            lines.append(self.stat_metric(event, "freq").describe())
            lines.append(self.stat_metric(event, "avg").describe())
        return "\n".join(lines)
