"""Text rendering of paper-style tables and breakdowns.

The benchmark harness prints the same rows the paper's tables report;
these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.model import BREAKDOWN_CATEGORIES, NoiseCategory
from repro.util.stats import DurationStats
from repro.util.units import fmt_ns


def format_table(
    title: str,
    rows: Mapping[str, DurationStats],
    paper_rows: Optional[Mapping[str, Tuple[float, float, int, int]]] = None,
) -> str:
    """Render a Table I-VI style table; optionally with paper reference rows.

    Columns: ``freq(ev/sec)  avg(nsec)  max(nsec)  min(nsec)``.
    """
    lines = [title, "-" * len(title)]
    width = max([10] + [len(name) for name in rows])
    header = (
        f"{'':{width}s} {'freq(ev/s)':>12s} {'avg(ns)':>12s} "
        f"{'max(ns)':>14s} {'min(ns)':>10s}"
    )
    lines.append(header)
    for name, stats in rows.items():
        lines.append(
            f"{name:{width}s} {stats.freq:12.1f} {stats.avg:12.0f} "
            f"{stats.max:14d} {stats.min:10d}"
        )
        if paper_rows is not None and name in paper_rows:
            freq, avg, mx, mn = paper_rows[name]
            lines.append(
                f"{'  (paper)':{width}s} {freq:12.1f} {avg:12.0f} "
                f"{mx:14d} {mn:10d}"
            )
    return "\n".join(lines)


def format_breakdown(
    title: str,
    fractions_by_app: Mapping[str, Mapping[NoiseCategory, float]],
) -> str:
    """Render a Figure 3 style stacked-breakdown table (rows = apps)."""
    lines = [title, "-" * len(title)]
    cats = list(BREAKDOWN_CATEGORIES)
    header = f"{'':10s} " + " ".join(f"{c.value:>12s}" for c in cats)
    lines.append(header)
    for app, fractions in fractions_by_app.items():
        cells = " ".join(f"{100 * fractions.get(c, 0.0):11.1f}%" for c in cats)
        lines.append(f"{app:10s} {cells}")
    return "\n".join(lines)


def format_interruptions(
    interruptions: Iterable, limit: int = 20, t_origin: int = 0
) -> str:
    """Render a zoomed synthetic-chart window (Fig. 1d / Fig. 10 style)."""
    lines = []
    for i, g in enumerate(interruptions):
        if i >= limit:
            lines.append("...")
            break
        parts = " + ".join(
            f"{a.name}[{fmt_ns(a.self_ns)}]"
            for a in sorted(g.activities, key=lambda a: a.start)
        )
        lines.append(
            f"t={fmt_ns(g.start - t_origin):>12s}  "
            f"noise={fmt_ns(g.noise_ns):>10s}  {parts}"
        )
    return "\n".join(lines)


#: One display character per noise category in the ASCII trace view,
#: matching the paper's colour legend (black ticks, red faults, green
#: preemptions, blue I/O, orange scheduling).
_CATEGORY_CHAR = {
    "periodic": "t",
    "page fault": "F",
    "scheduling": "s",
    "preemption": "P",
    "io": "n",
    "service": ".",
    "tracer": "~",
    "other": "?",
}


def render_ascii_trace(
    activities: Sequence,
    t0: int,
    t1: int,
    ncpus: int,
    width: int = 100,
) -> str:
    """A terminal rendition of the paper's execution-trace figures.

    One row per CPU; each column is a slice of ``(t1-t0)/width``; the cell
    shows the dominant noise category active there (space = pure user
    computation).  The same view Paraver gives, at character resolution —
    good enough to *see* Figure 5's fault placement or Figure 7's
    preemption density from a shell.
    """
    if t1 <= t0 or width <= 0:
        raise ValueError("need t1 > t0 and positive width")
    # Exact integer binning: cell c covers [t0 + span*c//width,
    # t0 + span*(c+1)//width) — no float round-off however large the
    # timestamps get.
    span = t1 - t0
    # For each cpu/cell, accumulate ns per category; pick the max.
    grids = [
        [dict() for _ in range(width)] for _ in range(ncpus)
    ]
    for act in activities:
        if act.end <= t0 or act.start >= t1 or act.cpu >= ncpus:
            continue
        first = max(0, (act.start - t0) * width // span)
        last = min(width - 1, (act.end - 1 - t0) * width // span)
        for cell in range(first, last + 1):
            begin = t0 + span * cell // width
            cell_end = t0 + span * (cell + 1) // width
            overlap = min(act.end, cell_end) - max(act.start, begin)
            if overlap <= 0:
                continue
            bucket = grids[act.cpu][cell]
            key = act.category.value
            bucket[key] = bucket.get(key, 0) + overlap
    lines = []
    for cpu in range(ncpus):
        chars = []
        for bucket in grids[cpu]:
            if not bucket:
                chars.append(" ")
            else:
                dominant = max(bucket, key=bucket.get)
                chars.append(_CATEGORY_CHAR.get(dominant, "?"))
        lines.append(f"cpu{cpu}: |{''.join(chars)}|")
    legend = "  ".join(f"{c}={name}" for name, c in _CATEGORY_CHAR.items())
    lines.append(f"legend: {legend}  (space = user computation)")
    return "\n".join(lines)


def render_analysis_summary(analysis, quanta=(), all_events=False) -> str:
    """The ``lttng-noise analyze`` body as one string.

    Shared by the CLI and the analysis service (``lttng-noise serve``):
    both render through this function, which is what makes a service
    response bit-identical to the batch CLI's stdout.  ``analysis`` may
    be a batch :class:`~repro.core.analysis.NoiseAnalysis` or a finished
    :class:`~repro.stream.analysis.StreamingAnalysis` — the query surface
    is the same.
    """
    import numpy as np

    lines = [
        f"span {fmt_ns(analysis.span_ns)}, {analysis.ncpus} cpus",
        f"total noise:     {fmt_ns(analysis.total_noise_ns())}",
        f"noise fraction:  {analysis.noise_fraction() * 100:.4f} %",
        f"noise imbalance: {analysis.noise_imbalance():.3f}",
        "breakdown:",
    ]
    for category, fraction in analysis.breakdown_fractions().items():
        lines.append(f"  {category.value:<12s} {fraction * 100:8.4f} %")
    rows = analysis.stats_by_event(noise_only=not all_events)
    lines.append(format_table(
        "Per-event statistics (freq per CPU-second)", rows
    ))
    for quantum_ns in quanta:
        timeline = analysis.noise_timeline(quantum_ns)
        peak = int(np.argmax(timeline)) if len(timeline) else 0
        lines.append(
            f"timeline @ {fmt_ns(quantum_ns)}: {len(timeline)} bins, "
            f"peak bin {peak} = {fmt_ns(int(timeline[peak]))}"
            if len(timeline) else
            f"timeline @ {fmt_ns(quantum_ns)}: empty"
        )
    return "\n".join(lines)


def full_report(analysis, meta=None) -> str:
    """One-shot text report: tables, breakdown, imbalance, task states.

    What the CLI ``report`` command prints; also handy in notebooks.
    """
    from repro.core.model import TraceMeta
    from repro.core.timeline import TaskTimeline
    from repro.util.units import fmt_ns

    meta = meta if meta is not None else getattr(analysis, "meta", TraceMeta())
    sections: List[str] = []
    sections.append(
        format_table(
            "Per-event statistics (freq per CPU-second, durations ns)",
            analysis.stats_by_event(noise_only=True),
        )
    )
    sections.append(
        format_breakdown("Noise breakdown", {"": analysis.breakdown_fractions()})
    )
    sections.append(
        f"total noise: {fmt_ns(analysis.total_noise_ns())} "
        f"({100 * analysis.noise_fraction():.3f} % of CPU time), "
        f"imbalance (max/mean per CPU): {analysis.noise_imbalance():.2f}"
    )
    per_cpu = analysis.per_cpu_noise_ns()
    sections.append(
        "per-CPU noise: "
        + "  ".join(f"cpu{i}={fmt_ns(int(v))}" for i, v in enumerate(per_cpu))
    )
    timeline = TaskTimeline(analysis.records, meta=meta, end_ts=analysis.end_ts)
    rows = timeline.summary()
    if rows:
        lines = [
            "task states (fraction of observed window):",
            f"{'task':16s} {'running':>9s} {'ready':>9s} {'blocked':>9s} "
            f"{'waits':>7s} {'mean wait':>11s}",
        ]
        for pid, row in rows.items():
            lines.append(
                f"{meta.name_of(pid):16s} {row['running']:9.3f} "
                f"{row['runnable']:9.3f} {row['blocked']:9.3f} "
                f"{int(row['wait_episodes']):7d} "
                f"{fmt_ns(int(row['mean_wait_ns'])):>11s}"
            )
        sections.append("\n".join(lines))
    return "\n\n".join(sections)


def format_histogram(hist, width: int = 50, max_rows: int = 30) -> str:
    """ASCII rendering of a duration histogram (Figures 4/6/8 style)."""
    lines = []
    peak = hist.counts.max() if hist.counts.size else 0
    if peak == 0:
        return "(empty histogram)"
    step = max(1, len(hist.counts) // max_rows)
    for i in range(0, len(hist.counts), step):
        count = int(hist.counts[i : i + step].sum())
        bar = "#" * max(0, int(round(width * count / (peak * step))))
        lines.append(f"{fmt_ns(int(hist.edges[i])):>12s} | {bar} {count}")
    return "\n".join(lines)
