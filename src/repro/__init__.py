"""lttng-noise: quantitative per-event OS noise analysis.

Reproduction of Morari, Gioiosa, Wisniewski, Cazorla, Valero,
"A Quantitative Analysis of OS Noise", IEEE IPDPS 2011.

Public API tour
---------------
* :mod:`repro.simkernel` -- simulated Linux compute node (the substrate).
* :mod:`repro.tracing` -- LTTng-like tracer: ring buffers + binary traces.
* :mod:`repro.workloads` -- FTQ and Sequoia-style workload models.
* :mod:`repro.core` -- the paper's contribution: per-event noise analysis.
* :mod:`repro.io` -- Paraver and Matlab-style exporters.
"""

__version__ = "1.0.0"
