"""Parallel run-execution layer: specs, process fan-out, result cache.

Independent seeded runs dominate the repo's wall time (sweeps, the Sequoia
case study, scalability extrapolations).  This package makes them cheap:

* :class:`RunSpec` — a hashable, serializable description of one run;
* :class:`ParallelRunner` — fans specs across a process pool, falling back
  to bit-identical in-process execution where pools are unavailable;
* :class:`ResultCache` — on-disk (trace, meta) store keyed by a content
  hash of the spec + package version, so repeat invocations skip
  simulation entirely.
"""

from repro.exec.cache import CACHE_ENV, ResultCache, default_cache_dir
from repro.exec.runner import (
    ParallelRunner,
    RunResult,
    execute_spec_serialized,
)
from repro.exec.spec import (
    RunSpec,
    dotted_path_of,
    register_workload,
    resolve_factory,
)

__all__ = [
    "CACHE_ENV",
    "ResultCache",
    "default_cache_dir",
    "ParallelRunner",
    "RunResult",
    "execute_spec_serialized",
    "RunSpec",
    "dotted_path_of",
    "register_workload",
    "resolve_factory",
]
