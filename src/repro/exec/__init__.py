"""Run-execution layer: planner, dispatch backends, sharded result store.

Independent seeded runs dominate the repo's wall time (sweeps, the Sequoia
case study, scalability extrapolations).  This package makes them cheap
and — at campaign scale — interruptible (see
``docs/sweep-orchestration.md``):

* :class:`RunSpec` — a hashable, serializable description of one run;
* :class:`SweepPlan` / :class:`Journal` — expand thousands of specs into
  deterministic content-hash-ordered shards with a JSON-lines journal of
  per-spec state, so an interrupted campaign resumes without rework;
* :class:`DispatchBackend` — where specs execute:
  :class:`LocalPoolBackend` process fan-out, :class:`SerialBackend`
  in-process, :class:`FlakyBackend` fault injection for tests; worker
  death is retried with backoff;
* :class:`ParallelRunner` — caching, dedup and input-order fan-in over a
  backend, falling back to bit-identical serial execution;
* :class:`ResultCache` / :class:`ShardedStore` — hash-prefix-sharded
  on-disk (trace, meta) store keyed by a content hash of the spec +
  package version, with size budgets and mtime-LRU eviction.
"""

from repro.exec.backend import (
    BackendFailure,
    DispatchBackend,
    FlakyBackend,
    LocalPoolBackend,
    SerialBackend,
    dispatch_with_retry,
)
from repro.exec.cache import (
    CACHE_ENV,
    ResultCache,
    ShardedStore,
    StoreEntry,
    default_cache_dir,
)
from repro.exec.journal import Journal
from repro.exec.plan import PlanShard, SweepPlan
from repro.exec.runner import (
    ParallelRunner,
    RunResult,
    execute_spec_serialized,
    execute_spec_streaming,
)
from repro.exec.spec import (
    RunSpec,
    dotted_path_of,
    register_workload,
    resolve_factory,
)

__all__ = [
    "BackendFailure",
    "CACHE_ENV",
    "DispatchBackend",
    "FlakyBackend",
    "Journal",
    "LocalPoolBackend",
    "ParallelRunner",
    "PlanShard",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "SerialBackend",
    "ShardedStore",
    "StoreEntry",
    "SweepPlan",
    "default_cache_dir",
    "dispatch_with_retry",
    "dotted_path_of",
    "execute_spec_serialized",
    "execute_spec_streaming",
    "register_workload",
    "resolve_factory",
]
