"""Dispatch backends: where a batch of RunSpecs actually executes.

:class:`~repro.exec.runner.ParallelRunner` used to hard-code two
execution paths (a ``ProcessPoolExecutor`` and an in-process loop).  This
module extracts them behind :class:`DispatchBackend`, a two-method
surface — ``execute(specs)`` yields ``(spec, trace, meta, elapsed)``
tuples as specs finish — so a remote-worker backend (SSH pool, batch
scheduler, object store + queue) becomes a drop-in later: everything a
backend exchanges is already plain bytes.

Failure model: a backend that can no longer make progress (worker died,
pool broke, connection lost) raises :class:`BackendFailure` carrying the
specs it did *not* complete.  :func:`dispatch_with_retry` is the shared
driver loop: it retries the remaining specs with exponential backoff —a
worker death on a big campaign must cost one re-dispatch, not the sweep —
and degrades to :class:`SerialBackend` when retries are exhausted, which
by construction produces bit-identical results.

:class:`FlakyBackend` injects deterministic worker deaths so the retry
and resume paths are testable without killing real processes.
"""

from __future__ import annotations

import json
import time
from abc import ABC, abstractmethod
from typing import Iterator, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro import obs
from repro.exec.spec import RunSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.model import TraceMeta
    from repro.tracing.ctf import Trace

#: What every backend yields per completed spec.
RunTuple = Tuple[RunSpec, "Trace", "TraceMeta", float]


class BackendFailure(Exception):
    """A backend died mid-batch; carries the specs still unexecuted."""

    def __init__(self, remaining: Sequence[RunSpec],
                 cause: Optional[str] = None) -> None:
        super().__init__(cause or "dispatch backend failure")
        self.remaining: List[RunSpec] = list(remaining)
        self.cause = cause


class DispatchBackend(ABC):
    """One way of turning a batch of specs into (trace, meta) results."""

    #: Human-readable backend name (summaries, obs labels).
    name = "abstract"
    #: True when the last execute() actually crossed a process boundary.
    used_processes = False

    @abstractmethod
    def execute(self, specs: List[RunSpec]) -> Iterator[RunTuple]:
        """Yield ``(spec, trace, meta, elapsed_s)`` per spec, any order.

        Raise :class:`BackendFailure` with the unfinished specs if the
        backend can no longer make progress.
        """

    def describe(self) -> str:
        return self.name


class SerialBackend(DispatchBackend):
    """In-process execution; the bit-identical reference everything else
    falls back to."""

    name = "serial"

    def execute(self, specs: List[RunSpec]) -> Iterator[RunTuple]:
        for spec in specs:
            t0 = time.perf_counter()
            with obs.span("run", workload=spec.workload, seed=spec.seed):
                trace, meta = spec.execute()
            yield spec, trace, meta, time.perf_counter() - t0


class LocalPoolBackend(DispatchBackend):
    """``ProcessPoolExecutor`` fan-out over one machine's cores.

    Workers exchange serialized primitives only (trace bytes + meta
    JSON), never live simulator objects, so fork and spawn behave
    identically.  A broken pool raises :class:`BackendFailure` with
    whatever had not completed — the retry driver re-dispatches it.
    """

    name = "local-pool"

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def describe(self) -> str:
        return f"{self.name}({self.max_workers} workers)"

    def execute(self, specs: List[RunSpec]) -> Iterator[RunTuple]:
        from repro.core.model import TraceMeta
        from repro.exec.runner import execute_spec_serialized
        from repro.tracing.ctf import Trace

        try:
            from concurrent.futures import ProcessPoolExecutor, as_completed
            from concurrent.futures.process import BrokenProcessPool
        except ImportError as exc:  # pragma: no cover - stdlib always has it
            raise BackendFailure(specs, cause=str(exc)) from exc

        workers = min(self.max_workers, len(specs))
        remaining = set(specs)
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(execute_spec_serialized, spec): spec
                    for spec in specs
                }
                if obs.enabled():
                    obs.gauge("backend.queue_depth").set(len(remaining))
                for future in as_completed(futures):
                    spec = futures[future]
                    trace_bytes, meta_json, elapsed, obs_json = (
                        future.result()
                    )
                    remaining.discard(spec)
                    self.used_processes = True
                    if obs.enabled():
                        obs.gauge("backend.queue_depth").set(len(remaining))
                        obs.counter("backend.completions").inc()
                    if obs_json is not None and obs.enabled():
                        obs.merge_snapshot(json.loads(obs_json))
                    yield (
                        spec,
                        Trace.from_bytes(trace_bytes),
                        TraceMeta.from_json(meta_json),
                        elapsed,
                    )
        except (BrokenProcessPool, OSError, RuntimeError) as exc:
            raise BackendFailure(sorted(remaining), cause=str(exc)) from exc


class FlakyBackend(DispatchBackend):
    """Deterministic fault injection: a backend whose workers "die".

    Wraps an inner backend; the first ``failures`` calls to
    :meth:`execute` complete ``survive`` specs and then raise
    :class:`BackendFailure` for the rest, exactly as a killed worker
    process would.  Purely for tests and chaos drills — it lets the
    retry/resume machinery be exercised without real process murder.
    """

    name = "flaky"

    def __init__(self, inner: Optional[DispatchBackend] = None,
                 failures: int = 1, survive: int = 1) -> None:
        if failures < 0 or survive < 0:
            raise ValueError("failures and survive must be >= 0")
        self.inner = inner or SerialBackend()
        self.failures_left = failures
        self.survive = survive
        self.injected = 0

    def describe(self) -> str:
        return f"{self.name}({self.inner.describe()})"

    @property
    def used_processes(self) -> bool:  # type: ignore[override]
        return self.inner.used_processes

    def execute(self, specs: List[RunSpec]) -> Iterator[RunTuple]:
        if self.failures_left <= 0:
            yield from self.inner.execute(specs)
            return
        self.failures_left -= 1
        self.injected += 1
        completed = set()
        if self.survive:
            for n, item in enumerate(self.inner.execute(specs), start=1):
                completed.add(item[0])
                yield item
                if n >= self.survive:
                    break
        remaining = [s for s in specs if s not in completed]
        if obs.enabled():
            obs.counter("backend.injected_faults").inc()
        raise BackendFailure(remaining, cause="injected worker death")


def dispatch_with_retry(
    backend: DispatchBackend,
    specs: List[RunSpec],
    *,
    retries: int = 2,
    backoff_s: float = 0.05,
    fallback: Optional[DispatchBackend] = None,
) -> Iterator[RunTuple]:
    """Drive a backend to completion across worker deaths.

    Yields every spec's result exactly once.  On :class:`BackendFailure`
    the unfinished remainder is re-dispatched after an exponentially
    growing pause (``backoff_s * 2**attempt``); once ``retries`` attempts
    are burned, the ``fallback`` backend (default: :class:`SerialBackend`,
    which cannot die) finishes the job.  Results are bit-identical no
    matter which path executed a spec.
    """
    remaining = list(specs)
    attempt = 0
    while remaining:
        completed = set()
        try:
            for item in backend.execute(remaining):
                completed.add(item[0])
                yield item
            return
        except BackendFailure as exc:
            claimed = set(exc.remaining)
            remaining = [
                s for s in remaining
                if s not in completed and s in claimed
            ]
            if obs.enabled():
                obs.counter("backend.worker_deaths").inc()
            if not remaining:
                return
            if attempt >= retries:
                break
            if obs.enabled():
                obs.counter("backend.retries").inc()
            time.sleep(backoff_s * (2 ** attempt))
            attempt += 1
    if remaining:
        if obs.enabled():
            obs.counter("backend.fallback_serial").inc()
        yield from (fallback or SerialBackend()).execute(remaining)
