"""Sweep planning: expand thousands of runs into shards that survive ^C.

A noise study at the paper's scale is not eight seeds on one box — it is
thousands of (config x seed x app) runs that take hours and *will* be
interrupted.  :class:`SweepPlan` turns a flat list of
:class:`~repro.exec.spec.RunSpec`\\ s into a campaign that can be killed
at any instant and resumed without rework:

* **dedup** — identical specs collapse to one planned run (fan-in gives
  every requesting position the shared result);
* **deterministic content-hash shards** — each unique spec is assigned to
  shard ``int(token[:8], 16) % shards`` and ordered by token within its
  shard, so the execution order is a pure function of the spec set (not
  of submission order, host, or dict iteration) and lines up with the
  :class:`~repro.exec.store.ShardedStore`'s hash-prefix layout;
* **journal** — per-spec state transitions land in a JSON-lines
  :class:`~repro.exec.journal.Journal` next to the plan, so a resumed
  invocation knows exactly what completed;
* **resume** — re-running the same plan re-dispatches only what the
  journal does not show ``done``; completed work is served from the
  result store as cache hits, making the re-run's reuse ratio the
  interruption-survival metric CI gates on.

The plan persists as ``plan.json`` + ``journal.jsonl`` in a directory of
the caller's choice (``lttng-noise sweep --plan DIR``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

import repro
from repro import obs
from repro.exec.journal import Journal
from repro.exec.spec import RunSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec.runner import ParallelRunner, RunResult

PLAN_FILENAME = "plan.json"
JOURNAL_FILENAME = "journal.jsonl"
PLAN_FORMAT = 1

#: progress callback, same shape the runner uses:
#: (done, total, spec, cached, elapsed_seconds) — done/total are plan-wide.
PlanProgressFn = Callable[[int, int, RunSpec, bool, float], None]


@dataclass(frozen=True)
class PlanShard:
    """One shard: its index and its token-ordered specs."""

    index: int
    specs: Tuple[RunSpec, ...]
    tokens: Tuple[str, ...]


class SweepPlan:
    """A deduplicated, sharded, journaled batch of RunSpecs."""

    def __init__(
        self,
        specs: Sequence[RunSpec],
        *,
        shards: int = 1,
        version: Optional[str] = None,
        plan_dir: Optional[str] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if not specs:
            raise ValueError("a sweep plan needs at least one spec")
        self.version = version or repro.__version__
        self.nshards = shards
        self.plan_dir = plan_dir
        # Dedup preserving first-occurrence order: the fan-in order.
        seen: Dict[RunSpec, None] = {}
        for spec in specs:
            seen.setdefault(spec)
        self.specs: Tuple[RunSpec, ...] = tuple(seen)
        self.duplicates = len(specs) - len(self.specs)
        self._tokens: Dict[RunSpec, str] = {
            spec: spec.cache_token(self.version) for spec in self.specs
        }
        self.shards: Tuple[PlanShard, ...] = self._build_shards()
        #: Campaign-wide totals accumulated across shards by :meth:`execute`.
        self.last_stats: Dict[str, float] = {
            "runs": 0, "cached": 0, "simulated": 0,
            "wall_s": 0.0, "busy_s": 0.0,
        }

    # ------------------------------------------------------------------
    # Construction details
    # ------------------------------------------------------------------
    def shard_index(self, token: str) -> int:
        """Content-defined shard assignment, stable across runs/hosts."""
        return int(token[:8], 16) % self.nshards

    def _build_shards(self) -> Tuple[PlanShard, ...]:
        buckets: List[List[Tuple[str, RunSpec]]] = [
            [] for _ in range(self.nshards)
        ]
        for spec, token in self._tokens.items():
            buckets[self.shard_index(token)].append((token, spec))
        shards = []
        for index, bucket in enumerate(buckets):
            bucket.sort(key=lambda pair: pair[0])
            shards.append(PlanShard(
                index=index,
                specs=tuple(spec for _, spec in bucket),
                tokens=tuple(token for token, _ in bucket),
            ))
        return tuple(shards)

    def token_of(self, spec: RunSpec) -> str:
        return self._tokens[spec]

    @property
    def tokens(self) -> Tuple[str, ...]:
        """Every planned token, in fan-in (first-occurrence) order."""
        return tuple(self._tokens[spec] for spec in self.specs)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": PLAN_FORMAT,
            "version": self.version,
            "shards": self.nshards,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    def save(self, plan_dir: Optional[str] = None) -> str:
        """Write ``plan.json`` under the plan directory; returns its path."""
        directory = plan_dir or self.plan_dir
        if directory is None:
            raise ValueError("no plan directory given")
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, PLAN_FILENAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fp:
            json.dump(self.to_dict(), fp, indent=2, sort_keys=True)
            fp.write("\n")
        os.replace(tmp, path)
        self.plan_dir = directory
        return path

    @classmethod
    def load(cls, plan_dir: str) -> "SweepPlan":
        path = os.path.join(plan_dir, PLAN_FILENAME)
        with open(path, "r", encoding="utf-8") as fp:
            data = json.load(fp)
        if data.get("format") != PLAN_FORMAT:
            raise ValueError(
                f"{path}: unsupported plan format {data.get('format')!r}"
            )
        specs = [RunSpec.from_dict(d) for d in data.get("specs", [])]
        return cls(
            specs,
            shards=int(data.get("shards", 1)),
            version=str(data.get("version", "")) or None,
            plan_dir=plan_dir,
        )

    @staticmethod
    def exists(plan_dir: str) -> bool:
        return os.path.exists(os.path.join(plan_dir, PLAN_FILENAME))

    def matches(self, specs: Sequence[RunSpec]) -> bool:
        """True when ``specs`` dedups to exactly this plan's spec set."""
        seen: Dict[RunSpec, None] = {}
        for spec in specs:
            seen.setdefault(spec)
        return set(seen) == set(self.specs)

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------
    def journal(self) -> Journal:
        if self.plan_dir is None:
            raise ValueError("plan has no directory; save() it first")
        return Journal(os.path.join(self.plan_dir, JOURNAL_FILENAME))

    def states(self) -> Dict[str, str]:
        """Last journaled state per planned token (pending if unseen)."""
        recorded = self.journal().replay() if self.plan_dir else {}
        return {
            token: recorded.get(token, "pending") for token in self.tokens
        }

    def pending_specs(self) -> List[RunSpec]:
        """Specs whose last journaled state is not ``done``."""
        states = self.states()
        return [
            spec for spec in self.specs
            if states[self._tokens[spec]] != "done"
        ]

    def verify_journal(self) -> List[str]:
        """Consistency issues between the journal and the plan (CI gate)."""
        issues = []
        planned = set(self.tokens)
        recorded = self.journal().replay()
        for token in recorded:
            if token not in planned:
                issues.append(f"journaled token not in plan: {token[:12]}")
        for token, state in self.states().items():
            if state == "running":
                issues.append(f"token left running: {token[:12]}")
        return issues

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        runner: "ParallelRunner",
        progress: Optional[PlanProgressFn] = None,
    ) -> List["RunResult"]:
        """Run the plan shard by shard; results in fan-in (spec) order.

        Every spec goes through the runner — already-``done`` work is
        served by the runner's result store as cache hits, which is what
        makes an interrupted campaign resume without rework.  Transitions
        are journaled per spec; on an ordinary exception unfinished specs
        are marked ``failed``, on KeyboardInterrupt they stay ``running``
        so a later ``--resume`` retries them.
        """
        journal = self.journal() if self.plan_dir is not None else None
        prior = journal.replay() if journal is not None else {}
        already_done = sum(
            1 for token in self.tokens if prior.get(token) == "done"
        )
        if obs.enabled():
            obs.counter("plan.specs").inc(len(self.specs))
            obs.counter("plan.duplicates").inc(self.duplicates)
            obs.counter("plan.resumed_done").inc(already_done)
            obs.gauge("plan.shards").set(self.nshards)
            obs.gauge("plan.total").set(len(self.specs))
            obs.gauge("plan.done").set(already_done)
        by_spec: Dict[RunSpec, "RunResult"] = {}
        done_count = 0
        total = len(self.specs)
        self.last_stats = {
            "runs": 0, "cached": 0, "simulated": 0,
            "wall_s": 0.0, "busy_s": 0.0,
        }  # reset per execute(); shards accumulate below

        with journal if journal is not None else _NullContext():
            for shard in self.shards:
                if not shard.specs:
                    continue
                if journal is not None:
                    for spec in shard.specs:
                        if prior.get(self._tokens[spec]) != "done":
                            journal.record(
                                self._tokens[spec], "running",
                                shard=shard.index,
                            )

                def on_result(done: int, _total: int, spec: RunSpec,
                              cached: bool, elapsed: float) -> None:
                    nonlocal done_count
                    done_count += 1
                    by_spec_marker = self._tokens[spec]
                    if journal is not None:
                        journal.record(
                            by_spec_marker, "done",
                            cached=cached,
                            elapsed_s=round(elapsed, 6),
                        )
                    if obs.enabled():
                        obs.gauge("plan.done").set(done_count)
                    if progress is not None:
                        progress(done_count, total, spec, cached, elapsed)

                try:
                    with obs.span("shard", index=shard.index,
                                  specs=len(shard.specs)):
                        results = runner.run(
                            list(shard.specs), progress=on_result
                        )
                except KeyboardInterrupt:
                    # Interrupted, not failed: journal keeps `running`
                    # entries so --resume retries exactly these.
                    raise
                except Exception as exc:
                    if journal is not None:
                        done_now = journal.replay()
                        for spec in shard.specs:
                            token = self._tokens[spec]
                            if done_now.get(token) == "running":
                                journal.record(
                                    token, "failed", error=str(exc)[:200],
                                )
                    raise
                self.last_stats["runs"] += runner.last_total
                self.last_stats["cached"] += runner.last_cached
                self.last_stats["simulated"] += runner.last_simulated
                self.last_stats["wall_s"] += runner.last_wall_s
                self.last_stats["busy_s"] += runner.last_busy_s
                for result in results:
                    by_spec[result.spec] = result
        missing = [s for s in self.specs if s not in by_spec]
        if missing:
            raise RuntimeError(
                f"plan execution lost {len(missing)} specs "
                f"(first: {missing[0].describe()})"
            )
        return [by_spec[spec] for spec in self.specs]

    def results_for(
        self, inputs: Sequence[RunSpec], results: Sequence["RunResult"]
    ) -> List["RunResult"]:
        """Fan plan results back onto a (possibly duplicated) input list."""
        by_spec = {result.spec: result for result in results}
        return [by_spec[spec] for spec in inputs]

    # ------------------------------------------------------------------
    def describe(self) -> str:
        occupied = sum(1 for shard in self.shards if shard.specs)
        dups = f", {self.duplicates} duplicates" if self.duplicates else ""
        return (
            f"plan: {len(self.specs)} unique specs in {occupied}/"
            f"{self.nshards} shards{dups} (version {self.version})"
        )


class _NullContext:
    """`with` target when the plan is unjournaled (no directory)."""

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc: object) -> None:
        return None
