"""Parallel fan-out of independent simulated runs.

Every seeded run is deterministic and independent, so a sweep is
embarrassingly parallel: :class:`ParallelRunner` ships :class:`RunSpec`\\ s
to a :class:`~repro.exec.backend.DispatchBackend` and reassembles results
in input order.  Workers exchange only plain bytes (the serialized trace
+ meta JSON), never live simulator objects, which keeps the fan-out
start-method agnostic — fork and spawn behave identically because each
worker rebuilds the workload from the spec.

Dispatch is layered (see ``docs/sweep-orchestration.md``): the runner
owns caching, dedup and input-order fan-in; *where* specs execute is the
backend's business (:class:`~repro.exec.backend.LocalPoolBackend` process
pool, :class:`~repro.exec.backend.SerialBackend` in-process, a fault-
injecting :class:`~repro.exec.backend.FlakyBackend` for tests).  Worker
death is retried with backoff and finally degraded to the serial
backend; by construction the results are bit-identical either way.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from repro import obs
from repro.exec.backend import (
    DispatchBackend,
    LocalPoolBackend,
    SerialBackend,
    dispatch_with_retry,
)
from repro.exec.cache import ResultCache
from repro.exec.spec import RunSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.analysis import NoiseAnalysis
    from repro.core.model import TraceMeta
    from repro.stream.analysis import StreamingAnalysis
    from repro.tracing.ctf import Trace

#: what the execution paths yield per completed spec
_RunTuple = Tuple[RunSpec, "Trace", "TraceMeta", float]

#: progress callback: (done, total, spec, cached, elapsed_seconds)
ProgressFn = Callable[[int, int, RunSpec, bool, float], None]


def execute_spec_serialized(
    spec: RunSpec,
) -> Tuple[bytes, str, float, Optional[str]]:
    """Worker entry point: simulate one spec, return picklable primitives.

    Returns ``(trace_bytes, meta_json, elapsed_seconds, obs_json)``.
    Module-level so it pickles under every multiprocessing start method.
    When obs is enabled (workers inherit the mode through
    :data:`repro.obs.OBS_ENV`), the worker's telemetry for this run is
    drained into ``obs_json`` for the parent to merge — spans keep the
    worker's pid, so a merged chrome export shows per-worker tracks.
    """
    from repro.obs.sampler import maybe_start_worker_sampler

    maybe_start_worker_sampler()
    t0 = time.perf_counter()
    with obs.span("run", workload=spec.workload, seed=spec.seed):
        trace, meta = spec.execute()
    elapsed = time.perf_counter() - t0
    obs_json = json.dumps(obs.drain_snapshot()) if obs.enabled() else None
    return trace.to_bytes(), meta.to_json(), elapsed, obs_json


def execute_spec_streaming(
    spec: RunSpec, **stream_kwargs: object
) -> "StreamingAnalysis":
    """Simulate one spec analyze-while-simulating: packets are analyzed as
    the collection daemon drains them and no full trace is assembled, so
    peak memory stays bounded by the analysis window rather than the trace
    length.  Returns the finished
    :class:`~repro.stream.analysis.StreamingAnalysis`; ``stream_kwargs``
    (``window_ns``, ``quanta``, ``on_chunk``, ...) are forwarded to it.
    """
    workload = spec.build_workload()
    with obs.span("run", workload=spec.workload, seed=spec.seed, stream=True):
        _node, analysis = workload.run_streaming(
            spec.duration_ns,
            seed=spec.seed,
            ncpus=spec.ncpus,
            **stream_kwargs,
        )
    return analysis


@dataclass
class RunResult:
    """One completed run: the spec plus its trace, meta and provenance."""

    spec: RunSpec
    trace: "object"
    meta: "object"
    cached: bool
    elapsed_s: float

    def analysis(self) -> "NoiseAnalysis":
        from repro.core.analysis import NoiseAnalysis

        return NoiseAnalysis(self.trace, meta=self.meta)


class ParallelRunner:
    """Fan independent RunSpecs across a backend, with optional caching."""

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        parallel: bool = True,
        backend: Optional[DispatchBackend] = None,
        retries: int = 2,
        backoff_s: float = 0.05,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self.cache = cache
        self.parallel = parallel
        self.backend = backend
        self.retries = retries
        self.backoff_s = backoff_s
        #: Filled per run() call: how many specs each path handled.
        self.last_cached = 0
        self.last_simulated = 0
        self.last_total = 0
        self.last_wall_s = 0.0
        self.last_busy_s = 0.0
        self.used_processes = False

    # ------------------------------------------------------------------
    def run(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[ProgressFn] = None,
    ) -> List[RunResult]:
        """Execute all specs; results come back in input order.

        Identical specs are simulated once and fanned back to every
        position that asked for them.
        """
        wall0 = time.perf_counter()
        total = len(specs)
        results: List[Optional[RunResult]] = [None] * total
        done = 0

        if progress is None and obs.enabled():
            # Observed long sweeps heartbeat by default (rate-limited).
            from repro.obs import Heartbeat

            hb = Heartbeat("runner", total=total)
            progress = lambda d, t, spec, cached, elapsed: hb.tick(d)  # noqa: E731

        def report(result: RunResult) -> None:
            nonlocal done
            done += 1
            if obs.enabled():
                obs.gauge("runner.done").set(done)
            if progress is not None:
                progress(done, total, result.spec, result.cached,
                         result.elapsed_s)

        # Cache pass + dedup: positions wanting the same uncached spec.
        pending: Dict[RunSpec, List[int]] = {}
        for i, spec in enumerate(specs):
            hit = self.cache.get(spec) if self.cache is not None else None
            if hit is not None:
                results[i] = RunResult(spec, hit[0], hit[1], True, 0.0)
                report(results[i])
            else:
                pending.setdefault(spec, []).append(i)

        self.last_cached = total - sum(len(v) for v in pending.values())
        self.last_simulated = len(pending)
        self.last_total = total
        self.last_busy_s = 0.0
        unique = list(pending)

        for spec, trace, meta, elapsed in self._execute(unique):
            if self.cache is not None:
                self.cache.put(spec, trace, meta)
            self.last_busy_s += elapsed
            for i in pending[spec]:
                results[i] = RunResult(spec, trace, meta, False, elapsed)
                report(results[i])
        self.last_wall_s = time.perf_counter() - wall0
        if obs.enabled():
            self._report_counters()
        return [r for r in results if r is not None]

    def _report_counters(self) -> None:
        obs.counter("runner.runs").inc(self.last_total)
        obs.counter("runner.cached").inc(self.last_cached)
        obs.counter("runner.simulated").inc(self.last_simulated)
        workers = min(self.max_workers, max(1, self.last_simulated))
        obs.gauge("runner.workers").set(
            workers if self.used_processes else 1
        )
        if self.last_wall_s > 0 and self.last_simulated:
            denom = self.last_wall_s * (
                workers if self.used_processes else 1
            )
            obs.gauge("runner.worker_utilization").set(
                min(1.0, self.last_busy_s / denom)
            )

    def summary(self) -> str:
        """One line describing the last :meth:`run` (satellite of the obs
        layer: sweeps should say what they did)."""
        how = (
            f"{min(self.max_workers, max(1, self.last_simulated))} workers"
            if self.used_processes
            else "serial"
        )
        return (
            f"{self.last_total} runs: {self.last_cached} cached, "
            f"{self.last_simulated} simulated ({how}) "
            f"in {self.last_wall_s:.2f}s wall"
        )

    def summary_dict(self) -> Dict[str, Any]:
        """The last :meth:`run` as machine-readable fields (CI pipelines)."""
        return {
            "runs": self.last_total,
            "cached": self.last_cached,
            "simulated": self.last_simulated,
            "wall_s": round(self.last_wall_s, 6),
            "busy_s": round(self.last_busy_s, 6),
            "workers": (
                min(self.max_workers, max(1, self.last_simulated))
                if self.used_processes else 1
            ),
            "backend": self._pick_backend().describe(),
            "used_processes": self.used_processes,
        }

    # ------------------------------------------------------------------
    def _pick_backend(self, nspecs: int = 0) -> DispatchBackend:
        """The backend this runner dispatches to (explicit or derived)."""
        if self.backend is not None:
            return self.backend
        workers = min(self.max_workers, nspecs) if nspecs else self.max_workers
        if not self.parallel or workers <= 1:
            return SerialBackend()
        return LocalPoolBackend(workers)

    def _execute(self, specs: List[RunSpec]) -> Iterator[_RunTuple]:
        """Yield ``(spec, trace, meta, elapsed)`` for every spec."""
        self.used_processes = False
        if not specs:
            return
        backend = self._pick_backend(len(specs))
        if isinstance(backend, SerialBackend):
            yield from backend.execute(specs)
            return
        # Restricted environments (no /dev/shm, spawn failures) or dead
        # workers: dispatch_with_retry re-dispatches with backoff, then
        # degrades to the bit-identical in-process path.
        for item in dispatch_with_retry(
            backend, specs, retries=self.retries, backoff_s=self.backoff_s,
        ):
            self.used_processes = backend.used_processes
            yield item
