"""Append-only JSON-lines journal of per-spec sweep state.

A long collection campaign must survive being killed at any instant:
SIGINT, a dead worker, a full disk.  The journal is the planner's write-
ahead record of what happened to every :class:`~repro.exec.spec.RunSpec`
in a :class:`~repro.exec.plan.SweepPlan` — one JSON object per line, one
line per state transition::

    {"token": "ab12...", "state": "running", "shard": 3}
    {"token": "ab12...", "state": "done", "elapsed_s": 0.41}

States move ``pending -> running -> done | failed``; a resumed sweep
replays the file and re-runs everything whose *last* state is not
``done``.  Appends are flushed line-by-line, so a crash loses at most the
line being written — and a half-written trailing line (torn write) is
ignored on replay instead of poisoning the whole journal.  Tokens are the
specs' content hashes, which makes journal entries stable across process
restarts and host reboots by construction.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, IO, Iterator, Optional, Tuple

from repro import obs

#: The journal's state vocabulary, in lifecycle order.
STATES = ("pending", "running", "done", "failed")


class Journal:
    """JSON-lines per-spec state journal, append-only and replayable."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fp: Optional[IO[str]] = None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _file(self) -> IO[str]:
        if self._fp is None or self._fp.closed:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._fp = open(self.path, "a", encoding="utf-8")
        return self._fp

    def record(self, token: str, state: str, **extra: Any) -> None:
        """Append one transition; flushed so a crash cannot unwrite it."""
        if state not in STATES:
            raise ValueError(f"unknown journal state {state!r}; use {STATES}")
        entry: Dict[str, Any] = {"token": token, "state": state}
        entry.update(extra)
        fp = self._file()
        fp.write(json.dumps(entry, sort_keys=True) + "\n")
        fp.flush()
        if obs.enabled():
            obs.counter("plan.journal_writes", state=state).inc()

    def close(self) -> None:
        if self._fp is not None and not self._fp.closed:
            self._fp.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _lines(self) -> Iterator[Tuple[int, Dict[str, Any]]]:
        """Yield ``(lineno, entry)`` for every parseable line.

        A corrupt *last* line is the signature of a torn write mid-crash
        and is skipped silently; a corrupt line in the middle means the
        file was edited or mixed and raises.
        """
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fp:
            raw = fp.read().split("\n")
        last_content = len(raw) - 1
        while last_content >= 0 and not raw[last_content].strip():
            last_content -= 1
        for lineno, line in enumerate(raw[: last_content + 1], start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except ValueError as exc:
                if lineno == last_content + 1:
                    continue  # torn final write: lose one transition, not all
                raise ValueError(
                    f"{self.path}:{lineno}: corrupt journal line"
                ) from exc
            if not isinstance(entry, dict) or "token" not in entry:
                raise ValueError(
                    f"{self.path}:{lineno}: journal line has no token"
                )
            yield lineno, entry

    def replay(self) -> Dict[str, str]:
        """Last recorded state per token (empty when no journal exists)."""
        states: Dict[str, str] = {}
        for _, entry in self._lines():
            states[str(entry["token"])] = str(entry.get("state", ""))
        return states

    def counts(self) -> Dict[str, int]:
        """How many tokens sit in each terminal state right now."""
        out = {state: 0 for state in STATES}
        for state in self.replay().values():
            out[state] = out.get(state, 0) + 1
        return out

    def describe(self) -> str:
        counts = self.counts()
        parts = [f"{counts[s]} {s}" for s in STATES if counts.get(s)]
        return f"journal {self.path}: " + (", ".join(parts) or "empty")
