"""Run specifications: pure-data descriptions of one simulated run.

A :class:`RunSpec` names everything that determines a traced run's output —
workload factory, factory kwargs, duration, seed, cpu count — as plain
hashable data.  Because the simulation is deterministic, a spec *is* its
result's identity: two equal specs produce bit-identical traces, which is
what makes process fan-out (pickle the spec, not the workload) and on-disk
result caching (hash the spec, not the trace) sound.

Workload factories are resolved by name: the built-ins (``"FTQ"`` and the
five Sequoia benchmarks) are always available, ``register_workload`` adds
project-local ones, and ``"package.module:attr"`` dotted paths reach any
importable zero-state factory.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

import repro

#: Explicitly registered factories (name -> callable(**kwargs) -> Workload).
_REGISTRY: Dict[str, Callable[..., "object"]] = {}


def register_workload(name: str, factory: Callable[..., "object"]) -> None:
    """Register a workload factory under ``name`` (case-insensitive)."""
    _REGISTRY[name.upper()] = factory


def resolve_factory(name: str) -> Callable[..., "object"]:
    """Resolve a workload name to its factory callable.

    Resolution order: explicit registry, built-ins (FTQ / Sequoia),
    ``module:attr`` dotted path.
    """
    from repro.workloads import SEQUOIA_PROFILES, FTQWorkload, SequoiaWorkload

    key = name.upper()
    if key in _REGISTRY:
        return _REGISTRY[key]
    if key == "FTQ":
        return FTQWorkload
    if key in SEQUOIA_PROFILES:
        def make_sequoia(**kwargs: Any) -> "object":
            return SequoiaWorkload(key, **kwargs)

        return make_sequoia
    if ":" in name:
        mod_name, _, attr = name.partition(":")
        try:
            mod = importlib.import_module(mod_name)
            obj = mod
            for part in attr.split("."):
                obj = getattr(obj, part)
        except (ImportError, AttributeError) as exc:
            raise ValueError(f"cannot resolve workload factory {name!r}: {exc}")
        if not callable(obj):
            raise ValueError(f"workload factory {name!r} is not callable")
        return obj
    raise ValueError(
        f"unknown workload {name!r}; use FTQ, a Sequoia benchmark name, "
        f"a registered name, or a 'module:attr' dotted path"
    )


def dotted_path_of(factory: "object") -> Optional[str]:
    """The ``module:qualname`` path of a module-level factory, or None.

    Lambdas, closures and bound instances have no importable path; for those
    the caller must fall back to in-process execution.
    """
    mod = getattr(factory, "__module__", None)
    qualname = getattr(factory, "__qualname__", None)
    if not mod or not qualname or "<locals>" in qualname:
        return None
    path = f"{mod}:{qualname}"
    try:
        resolved = resolve_factory(path)
    except ValueError:
        return None
    return path if resolved is factory else None


def _canonical(value: Any) -> Any:
    """Reject spec kwargs that are not hashable scalar data.

    Scalars keep the spec hashable (dict keys, set members) and make the
    JSON content hash trivially canonical.
    """
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(
        f"workload kwarg value {value!r} is not a scalar; "
        f"RunSpec kwargs must be str/int/float/bool/None"
    )


@dataclass(frozen=True, order=True)
class RunSpec:
    """One deterministic traced run, as hashable data."""

    workload: str
    duration_ns: int
    seed: int
    ncpus: int = 8
    #: Factory kwargs as a sorted tuple of (name, value) pairs so that equal
    #: specs hash equal regardless of keyword order.
    workload_kwargs: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls,
        workload: str,
        duration_ns: int,
        seed: int,
        ncpus: int = 8,
        **kwargs: Any,
    ) -> "RunSpec":
        items = tuple(sorted((k, _canonical(v)) for k, v in kwargs.items()))
        return cls(str(workload), int(duration_ns), int(seed), int(ncpus), items)

    def kwargs(self) -> Dict[str, Any]:
        return dict(self.workload_kwargs)

    # ------------------------------------------------------------------
    # Serialization + identity
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "duration_ns": self.duration_ns,
            "seed": self.seed,
            "ncpus": self.ncpus,
            "workload_kwargs": self.kwargs(),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "RunSpec":
        return RunSpec.make(
            data["workload"],
            data["duration_ns"],
            data["seed"],
            data.get("ncpus", 8),
            **data.get("workload_kwargs", {}),
        )

    def cache_token(self, version: Optional[str] = None) -> str:
        """Content hash of the spec, salted with the package version.

        A version bump invalidates every cached result, because the same
        spec may simulate differently under different code.
        """
        payload = dict(self.to_dict(), version=version or repro.__version__)
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def build_workload(self) -> "object":
        from repro.workloads import SEQUOIA_PROFILES

        kwargs = self.kwargs()
        if self.workload.upper() in SEQUOIA_PROFILES:
            # The phase plan scales to the intended run length by default.
            kwargs.setdefault("nominal_ns", self.duration_ns)
        return resolve_factory(self.workload)(**kwargs)

    def execute(self) -> Tuple["object", "object"]:
        """Simulate this run; returns ``(trace, meta)``."""
        from repro.core.model import TraceMeta

        workload = self.build_workload()
        node, trace = workload.run_traced(
            self.duration_ns, seed=self.seed, ncpus=self.ncpus
        )
        return trace, TraceMeta.from_node(node)

    def describe(self) -> str:
        return (
            f"{self.workload} seed={self.seed} "
            f"duration={self.duration_ns}ns ncpus={self.ncpus}"
        )
