"""On-disk result cache keyed by RunSpec content hashes.

Each cached run is three files under the cache root, named by the spec's
:meth:`~repro.exec.spec.RunSpec.cache_token`::

    <token>.lttnz      the binary trace (compressed packets)
    <token>.meta.json  the TraceMeta sidecar
    <token>.spec.json  the spec itself, for debugging/inspection

The token mixes in the package version, so upgrading the simulator
invalidates every stale entry without any cleanup pass.  Writes go through
a temp file + ``os.replace`` so a crashed run never leaves a half-written
entry that a later invocation would trust.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional, Tuple, TYPE_CHECKING

import repro
from repro import obs
from repro.exec.spec import RunSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.model import TraceMeta
    from repro.tracing.ctf import Trace

#: Environment override for the default cache location.
CACHE_ENV = "LTTNG_NOISE_CACHE"


def default_cache_dir() -> str:
    env = os.environ.get(CACHE_ENV)
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "lttng-noise")


class ResultCache:
    """Directory of (trace, meta) results addressed by spec hash."""

    def __init__(
        self, root: Optional[str] = None, version: Optional[str] = None
    ) -> None:
        self.root = root or default_cache_dir()
        self.version = version or repro.__version__
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def token(self, spec: RunSpec) -> str:
        return spec.cache_token(self.version)

    def _paths(self, spec: RunSpec) -> Tuple[str, str, str]:
        token = self.token(spec)
        return (
            os.path.join(self.root, token + ".lttnz"),
            os.path.join(self.root, token + ".meta.json"),
            os.path.join(self.root, token + ".spec.json"),
        )

    def contains(self, spec: RunSpec) -> bool:
        trace_path, meta_path, _ = self._paths(spec)
        return os.path.exists(trace_path) and os.path.exists(meta_path)

    # ------------------------------------------------------------------
    def get(self, spec: RunSpec) -> Optional[Tuple["Trace", "TraceMeta"]]:
        """Cached ``(trace, meta)`` for the spec, or None on a miss.

        A corrupt entry (truncated write, wrong format) counts as a miss
        and is evicted, so the caller re-simulates instead of crashing.
        """
        from repro.core.model import TraceMeta
        from repro.tracing.ctf import Trace, TraceFormatError

        trace_path, meta_path, _ = self._paths(spec)
        if not (os.path.exists(trace_path) and os.path.exists(meta_path)):
            self._miss()
            return None
        try:
            trace = Trace.from_file(trace_path)
            meta = TraceMeta.from_file(meta_path)
        except (TraceFormatError, OSError, ValueError, KeyError):
            self.evict(spec)
            self._miss()
            return None
        self.hits += 1
        if obs.enabled():
            obs.counter("cache.hit").inc()
        return trace, meta

    def _miss(self) -> None:
        self.misses += 1
        if obs.enabled():
            obs.counter("cache.miss").inc()

    def put(self, spec: RunSpec, trace: "Trace", meta: "TraceMeta") -> None:
        if obs.enabled():
            obs.counter("cache.put").inc()
        os.makedirs(self.root, exist_ok=True)
        trace_path, meta_path, spec_path = self._paths(spec)
        self._write_atomic(trace_path, trace.to_bytes(compress=True))
        self._write_atomic(meta_path, meta.to_json().encode("utf-8"))
        sidecar = dict(spec.to_dict(), version=self.version)
        self._write_atomic(
            spec_path, json.dumps(sidecar, indent=2).encode("utf-8")
        )

    def _write_atomic(self, path: str, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fp:
                fp.write(data)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # ------------------------------------------------------------------
    def evict(self, spec: RunSpec) -> None:
        if obs.enabled():
            obs.counter("cache.evict").inc()
        for path in self._paths(spec):
            if os.path.exists(path):
                os.unlink(path)

    def clear(self) -> int:
        """Remove every cache entry; returns the number of runs removed."""
        if not os.path.isdir(self.root):
            return 0
        removed = 0
        for name in os.listdir(self.root):
            path = os.path.join(self.root, name)
            if name.endswith(".lttnz"):
                removed += 1
            if name.endswith((".lttnz", ".meta.json", ".spec.json", ".tmp")):
                os.unlink(path)
        return removed

    def describe(self) -> str:
        return (
            f"cache {self.root}: {self.hits} hits, {self.misses} misses "
            f"(version {self.version})"
        )
