"""Back-compat name for the on-disk result store.

The flat per-file cache grew into the content-hash-prefix-sharded
:class:`~repro.exec.store.ShardedStore` (size budgets, mtime-LRU
eviction, durable atomic writes — see ``docs/sweep-orchestration.md``).
``ResultCache`` remains the name the rest of the repo uses for "the
default on-disk store": it *is* a ``ShardedStore``, and it still reads
entries written by the old flat layout.
"""

from __future__ import annotations

from repro.exec.store import (
    CACHE_ENV,
    ShardedStore,
    StoreEntry,
    default_cache_dir,
)


class ResultCache(ShardedStore):
    """Sharded on-disk (trace, meta) store addressed by spec hash."""


__all__ = [
    "CACHE_ENV",
    "ResultCache",
    "ShardedStore",
    "StoreEntry",
    "default_cache_dir",
]
