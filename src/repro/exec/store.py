"""Sharded on-disk blob stores keyed by content hashes.

Generalizes the flat ``ResultCache`` directory into a store that scales to
10k-run sweep campaigns:

* **content-hash-prefix sharding** — every entry lives under a
  subdirectory named by the first ``prefix_len`` hex digits of its token,
  so one campaign never piles tens of thousands of files into a single
  directory (and a remote/object-store backend can map shards to buckets
  later);
* **size budgets with mtime-LRU eviction** — ``max_bytes`` caps the
  store's footprint; when a put pushes it over, the least-recently-used
  entries (oldest mtime; hits refresh it) are evicted until under budget;
* **durable atomic writes** — data is fsynced in a temp file, published
  with ``os.replace``, and the shard directory is fsynced, so neither a
  crashed run nor a crashed *machine* leaves a half-written entry that a
  resumed sweep would trust.

The generic machinery lives in :class:`ShardedBlobStore` (tokens,
shards, atomic writes, enumeration, the LRU budget, and thread-safe
hit/miss/eviction counters — instances are shared across the service's
pool workers, so the counters take a lock).  :class:`ShardedStore`
specializes it to simulation results; ``repro.check.incremental`` reuses
the same base for its lint-record cache.

Each simulation entry is three files named by the spec's
:meth:`~repro.exec.spec.RunSpec.cache_token`::

    <shard>/<token>.lttnz      the binary trace (compressed packets)
    <shard>/<token>.meta.json  the TraceMeta sidecar
    <shard>/<token>.spec.json  the spec itself, for debugging/inspection

The token mixes in the package version, so upgrading the simulator
invalidates every stale entry without any cleanup pass.  Entries written
by the pre-sharding layout (flat files in the root) are still readable.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, TYPE_CHECKING

import repro
from repro import obs
from repro.exec.spec import RunSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.model import TraceMeta
    from repro.tracing.ctf import Trace

#: Environment override for the default cache location.
CACHE_ENV = "LTTNG_NOISE_CACHE"

#: The three files that make up one stored run, in `_paths` order.
_SUFFIXES = (".lttnz", ".meta.json", ".spec.json")


def default_cache_dir() -> str:
    env = os.environ.get(CACHE_ENV)
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "lttng-noise")


@dataclass(frozen=True)
class StoreEntry:
    """One stored entry: its token, on-disk size and recency."""

    token: str
    nbytes: int
    mtime_ns: int
    paths: Tuple[str, ...]


class ShardedBlobStore:
    """Hash-prefix-sharded directory of multi-file entries.

    Subclasses set ``suffixes`` (the files one entry consists of, first
    one defining what gets counted by :meth:`clear`) and, when only a
    prefix of them is needed for an entry to be servable,
    ``required_suffixes``.
    """

    #: The files making up one entry, in :meth:`token_paths` order.
    suffixes: Tuple[str, ...] = (".blob",)
    #: The subset without which an entry is incomplete (default: all).
    required_suffixes: Optional[Tuple[str, ...]] = None

    def __init__(
        self,
        root: str,
        *,
        prefix_len: int = 2,
        max_bytes: Optional[int] = None,
        durable: bool = False,
    ) -> None:
        if prefix_len < 1 or prefix_len > 8:
            raise ValueError("prefix_len must be in 1..8")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.root = root
        self.prefix_len = prefix_len
        self.max_bytes = max_bytes
        self.durable = durable
        self.hits = 0
        self.misses = 0
        self.evicted_lru = 0
        #: One store instance serves every pool worker; the counters
        #: above are only ever mutated under this lock.
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Stats (thread-safe: instances are shared across pool workers)
    # ------------------------------------------------------------------
    def _count_hit(self) -> None:
        with self._stats_lock:
            self.hits += 1

    def _count_miss(self) -> None:
        with self._stats_lock:
            self.misses += 1

    def _count_evicted(self, n: int) -> None:
        with self._stats_lock:
            self.evicted_lru += n

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def shard_of(self, token: str) -> str:
        """Shard directory name for a token (its hex-digest prefix)."""
        return token[: self.prefix_len]

    def token_paths(self, token: str) -> Tuple[str, ...]:
        shard = os.path.join(self.root, self.shard_of(token))
        return tuple(
            os.path.join(shard, token + suffix) for suffix in self.suffixes
        )

    def _legacy_paths(self, token: str) -> Tuple[str, ...]:
        """Pre-sharding layout: flat files directly under the root."""
        return tuple(
            os.path.join(self.root, token + suffix)
            for suffix in self.suffixes
        )

    def _required(self) -> Tuple[str, ...]:
        return self.required_suffixes or self.suffixes

    def locate(self, token: str) -> Optional[Tuple[str, ...]]:
        """Paths of an existing entry (sharded, else legacy flat), or None."""
        n = len(self._required())
        for paths in (self.token_paths(token), self._legacy_paths(token)):
            if all(os.path.exists(p) for p in paths[:n]):
                return paths
        return None

    # ------------------------------------------------------------------
    # Durable writes
    # ------------------------------------------------------------------
    def _write_atomic(self, path: str, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fp:
                fp.write(data)
                if self.durable:
                    fp.flush()
                    os.fsync(fp.fileno())
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @staticmethod
    def _fsync_dir(path: str) -> None:
        """Make a rename durable; best-effort where dirs can't be opened."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    @staticmethod
    def _touch(path: str) -> None:
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - entry raced away
            pass

    # ------------------------------------------------------------------
    # Enumeration + budget
    # ------------------------------------------------------------------
    def _entry_dirs(self) -> Iterator[str]:
        """The root (legacy flat entries) plus every shard directory."""
        if not os.path.isdir(self.root):
            return
        yield self.root
        with os.scandir(self.root) as it:
            for child in it:
                if child.is_dir():
                    yield child.path

    def entries(self) -> List[StoreEntry]:
        """Every complete stored entry, with size and recency."""
        found: Dict[str, Dict[str, Tuple[str, os.stat_result]]] = {}
        for directory in self._entry_dirs():
            with os.scandir(directory) as it:
                for child in it:
                    name = child.name
                    for suffix in self.suffixes:
                        if name.endswith(suffix):
                            token = name[: -len(suffix)]
                            try:
                                stat = child.stat()
                            except OSError:  # pragma: no cover - raced
                                continue
                            found.setdefault(token, {})[suffix] = (
                                child.path, stat,
                            )
                            break
        out = []
        for token, parts in sorted(found.items()):
            if any(s not in parts for s in self._required()):
                continue  # incomplete entry: not servable, not counted
            nbytes = sum(stat.st_size for _, stat in parts.values())
            mtime_ns = parts[self.suffixes[0]][1].st_mtime_ns
            paths = tuple(
                parts[s][0] for s in self.suffixes if s in parts
            )
            out.append(StoreEntry(token, nbytes, mtime_ns, paths))
        return out

    def total_bytes(self) -> int:
        return sum(entry.nbytes for entry in self.entries())

    def _observe_total(self, total: int) -> None:
        """Hook: called with the store size before budget enforcement."""

    def _observe_evicted(self, evicted: int, total: int) -> None:
        """Hook: called after eviction with the count and the new size."""

    def _enforce_budget(self, keep: Optional[str] = None) -> int:
        """Evict oldest-mtime entries until within ``max_bytes``.

        The entry named by ``keep`` (the one just written) survives even
        if it alone exceeds the budget — evicting the result the caller is
        about to rely on would turn every oversized put into a livelock.
        Returns the number of entries evicted.
        """
        assert self.max_bytes is not None
        entries = self.entries()
        total = sum(e.nbytes for e in entries)
        self._observe_total(total)
        if total <= self.max_bytes:
            return 0
        evicted = 0
        for entry in sorted(entries, key=lambda e: (e.mtime_ns, e.token)):
            if total <= self.max_bytes:
                break
            if entry.token == keep:
                continue
            for path in entry.paths:
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - raced away
                    pass
            total -= entry.nbytes
            evicted += 1
        self._count_evicted(evicted)
        self._observe_evicted(evicted, total)
        return evicted

    # ------------------------------------------------------------------
    # Removal
    # ------------------------------------------------------------------
    @staticmethod
    def _unlink_quiet(path: str) -> bool:
        """Remove a file that may have raced away; True when we removed
        it.  exists-then-unlink would TOCTOU against a concurrent
        evictor/clearer deleting the same entry."""
        try:
            os.unlink(path)
            return True
        except FileNotFoundError:
            return False

    def evict_token(self, token: str) -> None:
        for paths in (self.token_paths(token), self._legacy_paths(token)):
            for path in paths:
                self._unlink_quiet(path)

    def clear(self) -> int:
        """Remove every entry (all shards); returns the entries removed."""
        removed = 0
        primary = self.suffixes[0]
        for directory in list(self._entry_dirs()):
            try:
                names = os.listdir(directory)
            except FileNotFoundError:  # raced with another clear()
                continue
            for name in names:
                path = os.path.join(directory, name)
                if not os.path.isfile(path):
                    continue
                if name.endswith(self.suffixes + (".tmp",)):
                    if self._unlink_quiet(path) and name.endswith(primary):
                        removed += 1
            if directory != self.root:
                try:
                    os.rmdir(directory)  # fails (kept) unless empty
                except OSError:
                    pass
        return removed


class ShardedStore(ShardedBlobStore):
    """Hash-prefix-sharded directory of (trace, meta) results."""

    suffixes = _SUFFIXES
    #: the spec sidecar is debugging aid only — an entry serves without it
    required_suffixes = _SUFFIXES[:2]

    def __init__(
        self,
        root: Optional[str] = None,
        version: Optional[str] = None,
        *,
        prefix_len: int = 2,
        max_bytes: Optional[int] = None,
        durable: bool = False,
    ) -> None:
        super().__init__(
            root or default_cache_dir(),
            prefix_len=prefix_len,
            max_bytes=max_bytes,
            durable=durable,
        )
        self.version = version or repro.__version__

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def token(self, spec: RunSpec) -> str:
        return spec.cache_token(self.version)

    def _token_paths(self, token: str) -> Tuple[str, ...]:
        return self.token_paths(token)

    def _paths(self, spec: RunSpec) -> Tuple[str, ...]:
        return self.token_paths(self.token(spec))

    def _locate(self, token: str) -> Optional[Tuple[str, ...]]:
        return self.locate(token)

    def contains(self, spec: RunSpec) -> bool:
        return self.locate(self.token(spec)) is not None

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def get(self, spec: RunSpec) -> Optional[Tuple["Trace", "TraceMeta"]]:
        """Stored ``(trace, meta)`` for the spec, or None on a miss.

        A corrupt entry (truncated write, wrong format) counts as a miss
        and is evicted, so the caller re-simulates instead of crashing.
        A hit refreshes the entry's mtime — recency for the LRU budget.
        """
        from repro.core.model import TraceMeta
        from repro.tracing.ctf import Trace, TraceFormatError

        paths = self.locate(self.token(spec))
        if paths is None:
            self._miss()
            return None
        trace_path, meta_path = paths[0], paths[1]
        try:
            trace = Trace.from_file(trace_path)
            meta = TraceMeta.from_file(meta_path)
        except (TraceFormatError, OSError, ValueError, KeyError):
            self.evict(spec)
            self._miss()
            return None
        self._count_hit()
        self._touch(trace_path)
        if obs.enabled():
            obs.counter("cache.hit").inc()
        return trace, meta

    def _miss(self) -> None:
        self._count_miss()
        if obs.enabled():
            obs.counter("cache.miss").inc()

    def put(self, spec: RunSpec, trace: "Trace", meta: "TraceMeta") -> None:
        if obs.enabled():
            obs.counter("cache.put").inc()
        trace_path, meta_path, spec_path = self._paths(spec)
        shard_dir = os.path.dirname(trace_path)
        os.makedirs(shard_dir, exist_ok=True)
        trace_bytes = trace.to_bytes(compress=True)
        meta_bytes = meta.to_json().encode("utf-8")
        sidecar = dict(spec.to_dict(), version=self.version)
        spec_bytes = json.dumps(sidecar, indent=2).encode("utf-8")
        self._write_atomic(trace_path, trace_bytes)
        self._write_atomic(meta_path, meta_bytes)
        self._write_atomic(spec_path, spec_bytes)
        if obs.enabled():
            # Cheap running total (no directory scan): what this process
            # wrote, charted over time by the sampler.
            obs.counter("store.put_bytes").inc(
                len(trace_bytes) + len(meta_bytes) + len(spec_bytes)
            )
        if self.durable:
            self._fsync_dir(shard_dir)
        if self.max_bytes is not None:
            self._enforce_budget(keep=self.token(spec))

    # ------------------------------------------------------------------
    # Budget observability + removal
    # ------------------------------------------------------------------
    def _observe_total(self, total: int) -> None:
        if obs.enabled():
            obs.gauge("store.bytes").set(total)

    def _observe_evicted(self, evicted: int, total: int) -> None:
        if obs.enabled():
            obs.counter("store.evict_lru").inc(evicted)
            obs.gauge("store.bytes").set(total)

    def evict(self, spec: RunSpec) -> None:
        if obs.enabled():
            obs.counter("cache.evict").inc()
        self.evict_token(self.token(spec))

    def describe(self) -> str:
        budget = (
            f", budget {self.max_bytes} bytes" if self.max_bytes else ""
        )
        return (
            f"cache {self.root}: {self.hits} hits, {self.misses} misses "
            f"(version {self.version}{budget})"
        )
